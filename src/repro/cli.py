"""Command-line interface: ``rff``.

Subcommands map one-to-one onto the paper's workflows::

    rff list                          # the 49 benchmark programs
    rff fuzz CS/reorder_100           # fuzz one program with RFF
    rff run CS/account --tool POS     # run one baseline tool
    rff campaign --trials 5           # Appendix B table + Figure 4
    rff figure5 --executions 2000     # RQ3 rf-distribution histograms
"""

from __future__ import annotations

import argparse
import sys

from repro import bench
from repro.core.fuzzer import RffConfig, fuzz
from repro.harness.campaign import Campaign, CampaignConfig
from repro.harness.reporting import (
    appendix_b_table,
    figure4_ascii,
    figure5_ascii,
    rf_distribution_pos,
    rf_distribution_rff,
)
from repro.harness.tools import (
    GenMcTool,
    PeriodTool,
    RffTool,
    muzz_tool,
    paper_tools,
    pct_tool,
    pos_tool,
    qlearning_tool,
    random_tool,
)


def _add_substrate_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--substrate", choices=("dsl", "py"), default="dsl",
                        help="program substrate: 'dsl' (modeled benchmarks, gen: "
                             "scenarios) or 'py' (real-Python threading targets; "
                             "bare names map to the py: namespace)")


def _resolve_program(name: str, substrate: str = "dsl"):
    """Resolve a program name under the chosen substrate.

    Under ``--substrate=py`` bare names map into the ``py:`` namespace
    (``counter_race`` -> ``py:counter_race``).  Lookup failures become a
    clean ``SystemExit`` so diagnostics land on stderr, not a traceback.
    """
    if substrate == "py" and not name.startswith("py:"):
        name = f"py:{name}"
    try:
        return bench.get(name)
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None


def _check_memory_model(prog, memory_model: str) -> None:
    """Real-Python programs execute on real memory: SC only."""
    if prog.suite == "py" and memory_model != "sc":
        raise SystemExit(
            f"{prog.name} runs real Python code on real memory; "
            f"--memory-model {memory_model} is only meaningful for DSL programs"
        )


def _parse_sanitizers(spec: str | None) -> tuple[str, ...]:
    if not spec:
        return ()
    from repro.analysis.online import parse_sanitizers

    try:
        return parse_sanitizers(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _add_guard_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--watchdog-steps", type=int, metavar="N",
                        help="deterministic step-budget watchdog: kill an execution "
                             "after N events and report it as a 'timeout' bug")
    parser.add_argument("--watchdog-seconds", type=float, metavar="S",
                        help="best-effort wall-clock watchdog per execution")
    parser.add_argument("--livelock-window", type=int, metavar="N",
                        help="report a 'livelock' bug after N consecutive steps "
                             "without any novel event")


def _parse_guard(args: argparse.Namespace):
    if (
        args.watchdog_steps is None
        and args.watchdog_seconds is None
        and args.livelock_window is None
    ):
        return None
    from repro.runtime.guard import GuardConfig

    return GuardConfig(
        step_budget=args.watchdog_steps,
        wall_seconds=args.watchdog_seconds,
        livelock_window=args.livelock_window,
    )


def _make_tool(name: str):
    factories = {
        "RFF": RffTool,
        "POS": pos_tool,
        "PCT3": pct_tool,
        "PERIOD": PeriodTool,
        "GenMC": GenMcTool,
        "QLearning RF": qlearning_tool,
        "Random": random_tool,
        "MUZZ-like": muzz_tool,
    }
    if name not in factories:
        raise SystemExit(f"unknown tool {name!r}; choose from {sorted(factories)}")
    return factories[name]()


def _cmd_list(args: argparse.Namespace) -> int:
    listed = bench.py_names() if args.substrate == "py" else bench.names()
    for name in listed:
        prog = bench.get(name)
        kinds = ",".join(sorted(prog.bug_kinds)) or "none"
        mc = "mc" if prog.mc_supported else "  "
        print(f"{name:55s} [{mc}] bugs: {kinds}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    prog = _resolve_program(args.program, args.substrate)
    _check_memory_model(prog, args.memory_model)
    config = RffConfig(
        use_feedback=not args.no_feedback,
        use_power_schedule=not args.no_power,
        use_constraints=not args.no_constraints,
        memory_model=args.memory_model,
        sanitizers=_parse_sanitizers(args.sanitize),
        guard=_parse_guard(args),
    )
    report = fuzz(
        prog,
        max_executions=args.budget,
        seed=args.seed,
        config=config,
        stop_on_first_crash=not args.keep_going,
    )
    print(f"program:            {report.program_name}")
    print(f"memory model:       {config.memory_model}")
    print(f"schedules executed: {report.executions}")
    print(f"crashes:            {len(report.crashes)}")
    print(f"first crash at:     {report.first_crash_at}")
    print(f"corpus size:        {report.corpus_size}")
    print(f"rf-pair coverage:   {report.pair_coverage}")
    print(f"unique rf classes:  {report.unique_signatures}")
    if config.sanitizers:
        print(f"sanitizer reports:  {len(report.sanitizer_records)}")
    for crash in report.crashes[:5]:
        print(f"  crash #{crash.execution_index}: {crash.outcome} — {crash.failure}")
        print(f"    schedule: {crash.abstract_schedule}")
    for record in report.sanitizer_records[:5]:
        print(f"  sanitizer #{record.execution_index}: {record.report}")
    if args.minimize and report.crashes:
        from repro.core.minimize import minimize_schedule

        outcome = minimize_schedule(prog, report.crashes[0].abstract_schedule)
        print(f"minimized schedule ({outcome.removed} constraints removed, "
              f"reproduces {outcome.reproduction_rate:.0%}):")
        print(f"    {outcome.minimized}")
    if args.save_crashes and report.crashes:
        from repro.harness.persist import save_crashes

        written = save_crashes(report, args.save_crashes)
        print(f"saved {len(written)} crash file(s) under {args.save_crashes}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Dynamic analyses over sampled schedules: races, locksets, deadlocks."""
    from repro.analysis import check_lock_discipline, find_races, predict_deadlocks
    from repro.runtime.executor import Executor
    from repro.schedulers.pos import PosPolicy

    prog = _resolve_program(args.program, args.substrate)
    races: set[tuple[str, str, str]] = set()
    discipline: set[str] = set()
    deadlock_cycles: set[tuple[str, ...]] = set()
    crashes = 0
    for seed in range(args.executions):
        result = Executor(prog, PosPolicy(args.seed + seed)).run()
        crashes += result.crashed
        races |= find_races(result.trace).distinct()
        discipline |= check_lock_discipline(result.trace).flagged_locations
        for prediction in predict_deadlocks(result.trace).predictions:
            deadlock_cycles.add(prediction.cycle)
    print(f"analyzed {args.executions} schedules of {prog.name} ({crashes} crashed)")
    print(f"happens-before races ({len(races)} distinct):")
    for location, first, second in sorted(races)[:20]:
        print(f"  {location}: {first} || {second}")
    print(f"lock-discipline violations: {sorted(discipline) or 'none'}")
    print(f"predicted deadlock cycles: {[' -> '.join(c) for c in sorted(deadlock_cycles)] or 'none'}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    prog = _resolve_program(args.program, args.substrate)
    tool = _make_tool(args.tool)
    tool.sanitizers = _parse_sanitizers(args.sanitize)
    tool.guard = _parse_guard(args)
    tool.verify_replays = args.verify_replays
    result = tool.find_bug(prog, budget=args.budget, seed=args.seed)
    if result.error:
        # Diagnostics go to stderr: stdout stays parseable for pipelines.
        print(f"{tool.name} on {prog.name}: Error ({result.error})", file=sys.stderr)
        return 2
    status = f"bug ({result.outcome}) at schedule {result.schedules_to_bug}" if result.found else "no bug"
    print(f"{tool.name} on {prog.name}: {status} after {result.executions} schedules")
    if result.bucket is not None:
        verdict = result.replay_verdict or "unverified"
        print(f"  triage bucket: {result.bucket} ({verdict})")
    for report in result.sanitizer_reports:
        print(f"  {report}")
    return 0


def _validate_campaign_persistence(args: argparse.Namespace, allocator=None) -> str | None:
    """Catch misconfigured --resume/--store/--durable combinations early,
    with diagnostics instead of tracebacks deep inside the engine."""
    import pathlib

    if args.resume and args.store:
        manifest = pathlib.Path(args.store) / "MANIFEST.json"
        if manifest.exists():
            import json

            header = json.loads(manifest.read_text(encoding="utf-8")).get("header") or {}
            stored = header.get("allocator")
            requested = allocator.identity() if allocator is not None else None
            if stored != requested:
                stored_name = stored.get("name") if stored else "uniform"
                requested_name = requested.get("name") if requested else "uniform"
                return (
                    f"store {args.store} was written under allocator "
                    f"{stored_name!r} ({stored or 'no header stamp'}); refusing "
                    f"to resume it under {requested_name!r} — pass matching "
                    "--allocator options or point --store at a fresh directory"
                )
    if args.durable and not args.store:
        return "--durable requires --store DIR (the durable ledger campaigns write through)"
    if args.resume and not args.checkpoint and not args.store:
        return "--resume requires --checkpoint FILE or --store DIR to resume from"
    if args.resume and args.checkpoint:
        checkpoint = pathlib.Path(args.checkpoint)
        if not checkpoint.exists():
            return (
                f"cannot --resume from {checkpoint}: checkpoint file does not exist "
                "(drop --resume to start a fresh campaign)"
            )
        if checkpoint.stat().st_size == 0:
            return (
                f"cannot --resume from {checkpoint}: checkpoint file is empty "
                "(drop --resume to start a fresh campaign)"
            )
    if args.store and not args.resume:
        if (pathlib.Path(args.store) / "MANIFEST.json").exists():
            return (
                f"store {args.store} already holds a campaign; pass --resume to "
                "continue it or point --store at a fresh directory"
            )
    return None


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.programs:
        program_names = [
            name if args.substrate != "py" or name.startswith("py:") else f"py:{name}"
            for name in args.programs
        ]
    else:
        program_names = bench.py_names() if args.substrate == "py" else bench.names()
    tool_names = list(args.tools) if args.tools else [t.name for t in paper_tools()]
    sanitizers = _parse_sanitizers(args.sanitize)
    allocator = None
    if args.allocator:
        from repro.harness.allocator import make_allocator

        allocator = make_allocator(
            args.allocator,
            rounds=args.alloc_rounds,
            min_cell_budget=args.min_cell_budget,
        )
    config = CampaignConfig(
        trials=args.trials,
        budget=args.budget,
        base_seed=args.seed,
        sanitizers=sanitizers,
        verify_replays=args.verify_replays,
        guard=_parse_guard(args),
        allocator=allocator,
    )
    problem = _validate_campaign_persistence(args, allocator)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    if args.engine != "pool":
        for flag, value in (("--batch-size", args.batch_size),
                            ("--pool-size", args.pool_size),
                            ("--profile", args.profile)):
            if value is not None:
                print(f"error: {flag} requires --engine pool", file=sys.stderr)
                return 2
    use_engine = (
        args.parallel is not None
        or args.engine == "pool"
        or args.telemetry
        or args.checkpoint
        or args.store
        or args.durable
        or args.timeout is not None
        or args.fault_hook
    )
    if use_engine:
        from repro.harness.parallel import CampaignError, ParallelCampaign
        from repro.harness.persist import TornLineError
        from repro.harness.reporting import throughput_summary
        from repro.harness.telemetry import (
            JsonlSink,
            MultiSink,
            SinkLockedError,
            TelemetryAggregator,
        )

        if args.checkpoint and not args.resume:
            # Without --resume an existing checkpoint must not silently be
            # reused — start the campaign from scratch.
            import pathlib

            pathlib.Path(args.checkpoint).unlink(missing_ok=True)
        aggregator = TelemetryAggregator()
        sinks = [aggregator]
        if args.telemetry:
            try:
                sinks.append(JsonlSink(args.telemetry))
            except SinkLockedError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        sink = MultiSink(sinks)
        processes = args.parallel if args.parallel is not None else args.pool_size
        if args.durable:
            from repro.harness.supervisor import SupervisedCampaign

            campaign = SupervisedCampaign(
                config,
                processes=processes,
                cell_timeout=args.timeout,
                max_retries=args.retries,
                checkpoint=args.checkpoint,
                telemetry=sink,
                store=args.store,
                heartbeat_seconds=args.heartbeat_seconds,
                lease_seconds=args.lease_seconds,
                fault_hook=args.fault_hook,
                engine=args.engine,
                batch_size=args.batch_size,
                profile_dir=args.profile,
            )
        else:
            campaign = ParallelCampaign(
                config,
                processes=processes,
                cell_timeout=args.timeout,
                max_retries=args.retries,
                checkpoint=args.checkpoint,
                telemetry=sink,
                store=args.store,
                fault_hook=args.fault_hook,
                engine=args.engine,
                batch_size=args.batch_size,
                profile_dir=args.profile,
            )
        try:
            from repro.harness.store import StoreError

            result = campaign.run(tool_names, program_names)
        except (CampaignError, StoreError, TornLineError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            sink.close()
        print(appendix_b_table(result))
        print()
        print(figure4_ascii(result))
        print()
        print(throughput_summary(aggregator))
        if result.allocation is not None:
            from repro.harness.reporting import allocation_summary

            print()
            print(allocation_summary(result))
        if sanitizers:
            from repro.harness.reporting import sanitizer_summary

            print()
            print(sanitizer_summary(result))
        if args.verify_replays:
            from repro.harness.reporting import reproduction_summary

            print()
            print(reproduction_summary(result))
        if args.profile:
            from repro.harness.reporting import profile_summary

            print()
            print(profile_summary(args.profile))
        return 0
    programs = [bench.get(n) for n in program_names]
    tools = [_make_tool(n) for n in tool_names]
    progress = None
    if args.verbose:
        progress = lambda tool, program, trial: print(  # noqa: E731
            f"... {tool} / {program} / trial {trial}", file=sys.stderr
        )
    result = Campaign(config).run(tools, programs, progress=progress)
    print(appendix_b_table(result))
    print()
    print(figure4_ascii(result))
    if result.allocation is not None:
        from repro.harness.reporting import allocation_summary

        print()
        print(allocation_summary(result))
    if sanitizers:
        from repro.harness.reporting import sanitizer_summary

        print()
        print(sanitizer_summary(result))
    if args.verify_replays:
        from repro.harness.reporting import reproduction_summary

        print()
        print(reproduction_summary(result))
    return 0


def _cmd_dpor(args: argparse.Namespace) -> int:
    """Exhaustive-ish race-reversal exploration (rf-DPOR)."""
    from repro.algos.rfdpor import RfDporExplorer

    prog = _resolve_program(args.program)
    report = RfDporExplorer(
        prog,
        max_executions=args.budget,
        stop_on_first_bug=not args.exhaustive,
    ).run()
    print(f"program:            {prog.name}")
    print(f"executions:         {report.executions}")
    print(f"rf classes:         {report.rf_classes}")
    print(f"reversal seeds:     {report.seeds_generated}")
    print(f"first bug at class: {report.first_bug_at} ({report.bug_outcome})")
    print(f"space exhausted:    {report.complete}")
    return 0


def _cmd_triage(args: argparse.Namespace) -> int:
    """Fuzz keep-going, then bucket + replay-verify every finding."""
    from repro.core.fuzzer import RffFuzzer
    from repro.harness.triage import triage_report, write_artifacts

    prog = _resolve_program(args.program, args.substrate)
    _check_memory_model(prog, args.memory_model)
    config = RffConfig(
        memory_model=args.memory_model,
        sanitizers=_parse_sanitizers(args.sanitize),
        guard=_parse_guard(args),
    )
    fuzzer = RffFuzzer(prog, seed=args.seed, config=config)
    report = fuzzer.run(args.budget, stop_on_first_crash=False)
    result = triage_report(
        prog, report, replays=args.replays, config=config, minimize=args.minimize
    )
    print(f"schedules executed: {report.executions}")
    print(result.summary())
    if args.artifacts:
        written = write_artifacts(result, args.artifacts, config)
        print(f"wrote {len(written)} STABLE repro artifact(s) under {args.artifacts}")
        for path in written:
            print(f"  {path}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay a persisted crash file or repro artifact; optionally verify."""
    from repro.harness.persist import load_json
    from repro.runtime import run_program
    from repro.schedulers import ReplayPolicy

    raw = load_json(args.file)
    recorded = raw.get("program") if isinstance(raw, dict) else None
    if args.substrate is not None and isinstance(recorded, str):
        is_py = recorded.startswith("py:")
        if is_py != (args.substrate == "py"):
            print(
                f"error: {args.file} records {recorded!r} "
                f"({'py' if is_py else 'dsl'} substrate), but --substrate "
                f"{args.substrate} was requested",
                file=sys.stderr,
            )
            return 2
    if isinstance(raw, dict) and raw.get("artifact") == "rff-repro":
        from repro.harness.persist import ChecksumError
        from repro.harness.triage import load_artifact, verify_artifact

        try:
            payload = load_artifact(args.file)  # re-read with checksum check
        except (ChecksumError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"program:  {payload['program']}")
        print(f"bucket:   {payload['bucket']}")
        print(f"expected: {payload.get('outcome')} — {payload.get('failure')}")
        replays = args.replays if args.verify else 1
        verdict = verify_artifact(payload, replays=replays)
        for index, run in enumerate(verdict.runs, start=1):
            diverged = f", diverged at step {run.diverged}" if run.diverged is not None else ""
            print(f"replay {index}: {run.outcome} ({run.steps} steps{diverged})")
        if args.verify:
            print(f"verdict:  {verdict.verdict} ({verdict.matches}/{verdict.replays} matched)")
            return 0 if verdict.stable else 1
        return 0 if verdict.runs[0].matched else 1

    from repro.harness.persist import crash_from_dict

    program_name, crash = raw["program"], crash_from_dict(raw)
    prog = _resolve_program(program_name)
    if args.verify:
        from repro.core.reproduce import bucket_id, verify_replay
        from repro.harness.triage import crash_bucket_key

        key = crash.dedup_key or crash_bucket_key(prog, crash)
        verdict = verify_replay(
            prog, crash.concrete_schedule, crash.outcome, key, replays=args.replays
        )
        print(f"program:  {program_name}")
        print(f"expected: {crash.outcome} — {crash.failure}")
        print(f"bucket:   {bucket_id(key)}")
        print(f"verdict:  {verdict.verdict} ({verdict.matches}/{verdict.replays} matched)")
        return 0 if verdict.stable else 1
    result = run_program(prog, ReplayPolicy(list(crash.concrete_schedule)))
    print(f"program:  {program_name}")
    print(f"expected: {crash.outcome} — {crash.failure}")
    print(f"replayed: {result.outcome} — {result.trace.failure}")
    print(f"abstract schedule: {crash.abstract_schedule}")
    if args.trace:
        print()
        print(result.trace.format(limit=args.trace))
    return 0 if result.outcome == crash.outcome else 1


def _parse_gen_config(token: str | None):
    from repro.gen.synth import GenConfig

    try:
        return GenConfig.from_token(token or "")
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_gen(args: argparse.Namespace) -> int:
    """Synthesize a seeded corpus of generated scenarios."""
    import json

    from repro.gen.synth import GenConfig, corpus

    try:
        config = GenConfig.from_token(args.config or "")
        programs = corpus(args.seed, args.count, config)
    except ValueError as exc:
        if args.json:
            # Machine-readable failure: one JSON object on stdout, exit 2.
            print(json.dumps({"ok": False, "error": str(exc)}))
            return 2
        raise SystemExit(str(exc)) from None
    out = None
    if args.out:
        import pathlib

        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        handle = out.open("w", encoding="utf-8")
    kinds: dict[str, int] = {}
    rows = []
    for generated in programs:
        truth = generated.ground_truth
        kinds[truth.kind] = kinds.get(truth.kind, 0) + 1
        spec = generated.spec
        rows.append(
            {
                "name": generated.name,
                "kind": truth.kind,
                "threads": len(spec.threads),
                "ops": spec.total_ops,
                "window": truth.window,
                "budget": spec.step_budget,
            }
        )
        if not args.quiet and not args.json:
            print(
                f"{generated.name:24s} {truth.kind or 'none':9s} "
                f"threads={len(spec.threads)} ops={spec.total_ops:3d} "
                f"window={truth.window} budget={spec.step_budget}"
            )
        if out is not None:
            handle.write(generated.to_json() + "\n")
    if out is not None:
        handle.close()
    breakdown = ", ".join(f"{kind}: {count}" for kind, count in sorted(kinds.items()))
    summary = f"{len(programs)} programs ({breakdown})" + (f" -> {out}" if out else "")
    if args.json:
        print(
            json.dumps(
                {
                    "ok": True,
                    "seed": args.seed,
                    "count": args.count,
                    "config": config.to_token(),
                    "programs": rows,
                    "kinds": kinds,
                    "out": str(out) if out else None,
                }
            )
        )
        print(summary, file=sys.stderr)  # human summary off the JSON stream
    else:
        print(summary)
    return 0


def _cmd_eval_gen(args: argparse.Namespace) -> int:
    """Differential ground-truth evaluation over a generated corpus."""
    from repro.gen.synth import GEN_PREFIX  # noqa: F401 - ensures gen registers cleanly
    from repro.harness.groundtruth import (
        GroundTruthConfig,
        GroundTruthHarness,
        check_baseline,
        load_baseline,
        write_report,
    )
    from repro.harness.reporting import groundtruth_summary
    from repro.harness.telemetry import JsonlSink, TelemetrySink

    config = GroundTruthConfig(
        seed=args.seed,
        count=args.count,
        gen_config=_parse_gen_config(args.config),
        tools=tuple(args.tools),
        trials=args.trials,
        budget=args.budget,
        base_seed=args.base_seed,
        sanitizer_budget=args.sanitizer_budget,
    )
    sink = JsonlSink(args.telemetry) if args.telemetry else TelemetrySink()
    try:
        harness = GroundTruthHarness(config, sink=sink)
        payload = harness.evaluate(processes=args.parallel)
    finally:
        sink.close()
    target = write_report(payload, args.out)
    print(groundtruth_summary(payload))
    print()
    print(f"report: {target}")
    if args.baseline:
        problems = check_baseline(payload, load_baseline(args.baseline))
        if problems:
            print()
            print("BASELINE REGRESSION:")
            for problem in problems:
                print(f"  {problem}")
            return 3
        print("baseline: ok")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Inspect, compact, or verify a durable corpus store."""
    from repro.harness.persist import TornLineError
    from repro.harness.reporting import store_summary
    from repro.harness.store import CorpusStore, StoreError

    try:
        if args.store_command == "inspect":
            with CorpusStore(args.path, readonly=True) as store:
                print(store_summary(store.inspect()))
            return 0
        if args.store_command == "verify":
            with CorpusStore(args.path, readonly=True) as store:
                inspection = store.verify()
            print(store_summary(inspection))
            print("verify: ok")
            return 0
        with CorpusStore(args.path) as store:
            stats = store.compact()
        print(
            f"compacted {args.path}: "
            f"{stats['segments_before']} -> {stats['segments_after']} segment(s), "
            f"{stats['records_before']} -> {stats['records_after']} record(s)"
        )
        if args.telemetry:
            from repro.harness.telemetry import JsonlSink

            with JsonlSink(args.telemetry) as sink:
                sink.emit("store_compact", path=str(args.path), **stats)
        return 0
    except (StoreError, TornLineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_figure5(args: argparse.Namespace) -> int:
    prog = bench.get(args.program)
    pos = rf_distribution_pos(prog, executions=args.executions, seed=args.seed)
    rff = rf_distribution_rff(prog, executions=args.executions, seed=args.seed)
    print(figure5_ascii(pos))
    print()
    print(figure5_ascii(rff))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``rff`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(prog="rff", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmark programs")
    _add_substrate_flag(p_list)
    p_list.set_defaults(func=_cmd_list)

    p_fuzz = sub.add_parser("fuzz", help="fuzz one program with RFF")
    p_fuzz.add_argument("program")
    _add_substrate_flag(p_fuzz)
    p_fuzz.add_argument("--budget", type=int, default=1000)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--keep-going", action="store_true", help="do not stop at the first crash")
    p_fuzz.add_argument("--no-feedback", action="store_true")
    p_fuzz.add_argument("--no-power", action="store_true")
    p_fuzz.add_argument("--no-constraints", action="store_true")
    p_fuzz.add_argument("--memory-model", choices=("sc", "tso"), default="sc")
    p_fuzz.add_argument("--minimize", action="store_true",
                        help="delta-debug the first crashing abstract schedule")
    p_fuzz.add_argument("--save-crashes", metavar="DIR",
                        help="persist crashing schedules as JSON under DIR")
    p_fuzz.add_argument("--sanitize", metavar="LIST",
                        help="online sanitizers per execution: comma-separated subset of "
                             "race,lockset,lockorder (or 'all')")
    _add_guard_flags(p_fuzz)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_analyze = sub.add_parser("analyze", help="dynamic trace analyses (races, locks)")
    p_analyze.add_argument("program")
    _add_substrate_flag(p_analyze)
    p_analyze.add_argument("--executions", type=int, default=20)
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_run = sub.add_parser("run", help="run one baseline tool on one program")
    p_run.add_argument("program")
    _add_substrate_flag(p_run)
    p_run.add_argument("--tool", default="POS")
    p_run.add_argument("--budget", type=int, default=1000)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--sanitize", metavar="LIST",
                       help="online sanitizers per execution: comma-separated subset of "
                            "race,lockset,lockorder (or 'all')")
    p_run.add_argument("--verify-replays", type=int, default=0, metavar="N",
                       help="replay a found bug N times and report STABLE/FLAKY")
    _add_guard_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_campaign = sub.add_parser("campaign", help="run a tools x programs x trials campaign")
    _add_substrate_flag(p_campaign)
    p_campaign.add_argument("--trials", type=int, default=3)
    p_campaign.add_argument("--budget", type=int, default=500)
    p_campaign.add_argument("--seed", type=int, default=1234)
    p_campaign.add_argument("--programs", nargs="*")
    p_campaign.add_argument("--tools", nargs="*")
    p_campaign.add_argument("--verbose", action="store_true")
    p_campaign.add_argument("--parallel", type=int, metavar="N",
                            help="fault-tolerant engine with N worker processes "
                                 "(0 = in-process serial engine)")
    p_campaign.add_argument("--engine", choices=("percell", "pool"), default="percell",
                            help="execution engine: 'percell' forks one process per "
                                 "cell attempt; 'pool' serves batches of slices "
                                 "through persistent workers that cache tools and "
                                 "programs (bit-identical results, much less "
                                 "per-slice overhead)")
    p_campaign.add_argument("--batch-size", type=int, default=None, metavar="N",
                            help="max slices per pooled batch (default 8; "
                                 "requires --engine pool)")
    p_campaign.add_argument("--pool-size", type=int, default=None, metavar="N",
                            help="persistent workers for --engine pool (an alias "
                                 "for --parallel that reads better with batches)")
    p_campaign.add_argument("--profile", metavar="DIR",
                            help="write per-worker cProfile dumps (.pstats) under DIR "
                                 "and print a merged hot-spot summary "
                                 "(requires --engine pool)")
    p_campaign.add_argument("--telemetry", metavar="FILE",
                            help="write structured campaign telemetry (JSONL) to FILE")
    p_campaign.add_argument("--checkpoint", metavar="FILE",
                            help="persist completed cells to FILE as the campaign runs")
    p_campaign.add_argument("--resume", action="store_true",
                            help="resume completed cells from an existing --checkpoint file")
    p_campaign.add_argument("--store", metavar="DIR",
                            help="durable corpus store directory: every completed cell is "
                                 "recorded there crash-safely (continue with --resume, "
                                 "examine with 'rff store')")
    p_campaign.add_argument("--durable", action="store_true",
                            help="supervised engine: heartbeat/lease worker supervision "
                                 "with exponential-backoff reassignment (requires --store)")
    p_campaign.add_argument("--heartbeat-seconds", type=float, default=0.5, metavar="S",
                            help="supervised worker heartbeat interval (default 0.5)")
    p_campaign.add_argument("--lease-seconds", type=float, default=10.0, metavar="S",
                            help="kill and reassign a worker silent this long (default 10)")
    p_campaign.add_argument("--fault-hook", metavar="MODULE:FUNC",
                            help="chaos-testing hook called at the start of every cell "
                                 "(e.g. repro.harness.faults:chaos_hook with RFF_CHAOS_PLAN set)")
    p_campaign.add_argument("--timeout", type=float, metavar="SECONDS",
                            help="kill and retry any cell exceeding this wall time")
    p_campaign.add_argument("--retries", type=int, default=2,
                            help="extra attempts per crashed/timed-out cell (default 2)")
    p_campaign.add_argument("--sanitize", metavar="LIST",
                            help="attach online sanitizers to every tool: comma-separated "
                                 "subset of race,lockset,lockorder (or 'all')")
    p_campaign.add_argument("--allocator", choices=("uniform", "laplace", "novelty"),
                            help="budget allocator: uniform reproduces the classic "
                                 "per-cell split bit-for-bit; laplace/novelty re-plan "
                                 "schedule budgets across cells in seeded rounds")
    p_campaign.add_argument("--alloc-rounds", type=int, default=None, metavar="R",
                            help="allocation rounds for adaptive allocators (default 4)")
    p_campaign.add_argument("--min-cell-budget", type=int, default=None, metavar="N",
                            help="per-round schedule floor for every live cell "
                                 "(starvation freedom; default 1)")
    p_campaign.add_argument("--verify-replays", type=int, default=0, metavar="N",
                            help="replay every found bug N times; FLAKY bugs are "
                                 "quarantined in the reproduction ledger")
    _add_guard_flags(p_campaign)
    p_campaign.set_defaults(func=_cmd_campaign)

    p_triage = sub.add_parser(
        "triage", help="fuzz keep-going, bucket findings, verify reproducers"
    )
    p_triage.add_argument("program")
    _add_substrate_flag(p_triage)
    p_triage.add_argument("--budget", type=int, default=1000)
    p_triage.add_argument("--seed", type=int, default=0)
    p_triage.add_argument("--replays", type=int, default=5,
                          help="verification replays per bug bucket (default 5)")
    p_triage.add_argument("--minimize", action="store_true",
                          help="shrink each reproducer with bucket-constrained ddmin")
    p_triage.add_argument("--artifacts", metavar="DIR",
                          help="write checksummed repro artifacts for STABLE bugs")
    p_triage.add_argument("--memory-model", choices=("sc", "tso"), default="sc")
    p_triage.add_argument("--sanitize", metavar="LIST",
                          help="online sanitizers per execution: comma-separated subset "
                               "of race,lockset,lockorder (or 'all')")
    _add_guard_flags(p_triage)
    p_triage.set_defaults(func=_cmd_triage)

    p_dpor = sub.add_parser("dpor", help="race-reversal rf-DPOR exploration")
    p_dpor.add_argument("program")
    p_dpor.add_argument("--budget", type=int, default=5000)
    p_dpor.add_argument("--exhaustive", action="store_true",
                        help="keep exploring after the first bug")
    p_dpor.set_defaults(func=_cmd_dpor)

    p_replay = sub.add_parser(
        "replay", help="replay a persisted crash file or repro artifact"
    )
    p_replay.add_argument("file")
    p_replay.add_argument("--substrate", choices=("dsl", "py"), default=None,
                          help="validate that the file's program belongs to this "
                               "substrate before replaying")
    p_replay.add_argument("--trace", type=int, metavar="N", default=0,
                          help="print the first N trace events")
    p_replay.add_argument("--verify", action="store_true",
                          help="replay N times and report a STABLE/FLAKY verdict "
                               "(exit 0 only for STABLE)")
    p_replay.add_argument("--replays", type=int, default=5, metavar="N",
                          help="replays for --verify (default 5)")
    p_replay.set_defaults(func=_cmd_replay)

    p_gen = sub.add_parser("gen", help="synthesize generated scenarios with planted bugs")
    p_gen.add_argument("--seed", type=int, default=0,
                       help="first corpus seed; programs are gen:<seed>..gen:<seed+count-1>")
    p_gen.add_argument("--count", type=int, default=10)
    p_gen.add_argument("--config", metavar="TOKEN",
                       help="generator knobs token, e.g. 't=3,b=4,mix=r1d1a1n1' "
                            "(see repro.gen.synth.GenConfig)")
    p_gen.add_argument("--out", metavar="FILE",
                       help="write one JSON object per program (spec + ground truth) to FILE")
    p_gen.add_argument("--quiet", action="store_true", help="suppress the per-program table")
    p_gen.add_argument("--json", action="store_true",
                       help="emit one JSON object on stdout (per-program rows + kind "
                            "breakdown); the human summary moves to stderr")
    p_gen.set_defaults(func=_cmd_gen)

    p_eval = sub.add_parser(
        "eval-gen", help="differential ground-truth evaluation over a generated corpus"
    )
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument("--count", type=int, default=50)
    p_eval.add_argument("--config", metavar="TOKEN", help="generator knobs token")
    p_eval.add_argument("--tools", nargs="*", default=["RFF", "Random", "PCT3", "POS"])
    p_eval.add_argument("--trials", type=int, default=3)
    p_eval.add_argument("--budget", type=int, default=400)
    p_eval.add_argument("--base-seed", type=int, default=1234)
    p_eval.add_argument("--sanitizer-budget", type=int, default=80)
    p_eval.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes for the crash channel "
                             "(1 = serial; results are bit-identical either way)")
    p_eval.add_argument("--out", default="results/BENCH_groundtruth.json",
                        help="report path (default results/BENCH_groundtruth.json)")
    p_eval.add_argument("--baseline", metavar="FILE",
                        help="check FN/FP rates and detection against a baseline "
                             "JSON; exit 3 on regression")
    p_eval.add_argument("--telemetry", metavar="FILE",
                        help="write gen_corpus/gen_eval_end telemetry (JSONL) to FILE")
    p_eval.set_defaults(func=_cmd_eval_gen)

    p_store = sub.add_parser("store", help="inspect/compact/verify a durable corpus store")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_inspect = store_sub.add_parser("inspect", help="summarize a store's contents and health")
    p_inspect.add_argument("path")
    p_inspect.set_defaults(func=_cmd_store)
    p_compact = store_sub.add_parser(
        "compact", help="rewrite the store as one deduplicated segment (atomic)"
    )
    p_compact.add_argument("path")
    p_compact.add_argument("--telemetry", metavar="FILE",
                           help="append a store_compact telemetry record (JSONL) to FILE")
    p_compact.set_defaults(func=_cmd_store)
    p_verify = store_sub.add_parser(
        "verify", help="checksum-verify every record; nonzero exit on corruption"
    )
    p_verify.add_argument("path")
    p_verify.set_defaults(func=_cmd_store)

    p_fig5 = sub.add_parser("figure5", help="rf-distribution histograms (RQ3)")
    p_fig5.add_argument("--program", default="SafeStack")
    p_fig5.add_argument("--executions", type=int, default=2000)
    p_fig5.add_argument("--seed", type=int, default=0)
    p_fig5.set_defaults(func=_cmd_figure5)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
