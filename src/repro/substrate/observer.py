"""Shared-memory observer: Read/Write events for real Python state.

Two complementary mechanisms feed attribute and global mutations of
*opted-in* state into the reads-from relation:

* :func:`track` swaps an object's class for a generated subclass whose
  ``__getattribute__``/``__setattr__`` emit ``ReadOp``/``WriteOp`` on a
  per-``(object, attribute)`` :class:`SharedVar` before performing the real
  access.  Only non-underscore attributes present in the instance
  ``__dict__`` (or an explicit ``attrs`` set) are intercepted, so methods
  and internals stay free.
* :class:`Observer` installs a ``sys.settrace`` opcode tracer in every
  controlled thread.  For registered modules it precomputes, per code
  object, the instruction offsets of ``LOAD_GLOBAL``/``STORE_GLOBAL`` on
  tracked names, and parks the thread *before* each such instruction
  executes, emitting a ``ReadOp`` or ``WriteOp``.  Parking pre-store is
  what opens the lost-update window of ``G += 1``: a thread suspended at
  its ``WriteOp`` has loaded but not yet stored, so an interleaved load
  by another thread observes the stale value — exactly the real-memory
  semantics the event stream claims.  The stored value lives on the
  interpreter's evaluation stack (unreadable from a tracer), so write
  events carry a ``"?"`` placeholder; read events resync the mirror from
  the live module dict before parking, so their values are exact.

Both paths park the thread at the gate like any shim operation, so tracked
accesses are first-class scheduling points: RFF feedback, the FastTrack
race sanitizer and triage keys see ``var:py.*`` locations exactly as they
see DSL shared variables.
"""

from __future__ import annotations

import dis
from types import CodeType, FrameType, ModuleType
from typing import Any, Callable, Iterable

from repro.runtime import ops
from repro.runtime.errors import ProgramError
from repro.runtime.objects import SharedVar
from repro.substrate import gate
from repro.substrate.gate import SubstrateContext, call_site

gate.register_internal_file(__file__)


# ----------------------------------------------------------------------
# Attribute tracking (class swap)
# ----------------------------------------------------------------------
class _TrackState:
    """Per-instance tracking metadata, stored in the instance ``__dict__``."""

    __slots__ = ("ctx", "name", "attrs", "vars")

    def __init__(self, ctx: SubstrateContext, name: str, attrs: frozenset[str] | None):
        self.ctx = ctx
        self.name = name
        self.attrs = attrs
        #: attribute -> SharedVar, created lazily with deterministic names.
        self.vars: dict[str, SharedVar] = {}

    def var_for(self, attr: str, current: Any) -> SharedVar:
        var = self.vars.get(attr)
        if var is None:
            var = self.vars[attr] = SharedVar(f"py.{self.name}.{attr}", current)
        return var

    def covers(self, attr: str) -> bool:
        return self.attrs is None or attr in self.attrs


def _tracked_getattribute(self: Any, attr: str) -> Any:
    if not attr.startswith("_"):
        d = object.__getattribute__(self, "__dict__")
        if attr in d:
            state: _TrackState | None = d.get("_substrate_track")
            if state is not None and state.covers(attr) and state.ctx.is_controlled():
                var = state.var_for(attr, d[attr])
                # Sync the mirror before parking: untracked writers may have
                # touched the real attribute since the last event.
                var.value = d[attr]
                state.ctx.call(ops.ReadOp(var=var, loc=call_site()))
                # Re-read after the park: interleaved tracked writes landed.
                return d[attr]
    return object.__getattribute__(self, attr)


def _tracked_setattr(self: Any, attr: str, value: Any) -> None:
    if not attr.startswith("_"):
        d = object.__getattribute__(self, "__dict__")
        state: _TrackState | None = d.get("_substrate_track")
        if state is not None and state.covers(attr) and state.ctx.is_controlled():
            var = state.var_for(attr, d.get(attr))
            state.ctx.call(ops.WriteOp(var=var, value=value, loc=call_site()))
            # The dict store runs after the event but before any other
            # thread can be scheduled, so the mutation is atomic with it.
            d[attr] = value
            return
    object.__setattr__(self, attr, value)


#: base class -> generated tracked subclass (shared across executions; the
#: subclass carries no context, the per-instance _TrackState does).
_TRACKED_CLASSES: dict[type, type] = {}


def _tracked_class(cls: type) -> type:
    sub = _TRACKED_CLASSES.get(cls)
    if sub is None:
        sub = type(
            f"Tracked{cls.__name__}",
            (cls,),
            {
                "__getattribute__": _tracked_getattribute,
                "__setattr__": _tracked_setattr,
                "__slots__": (),
            },
        )
        _TRACKED_CLASSES[cls] = sub
    return sub


def track(obj: Any, name: str | None = None, attrs: Iterable[str] | None = None) -> Any:
    """Opt ``obj`` into shared-memory observation; returns ``obj``.

    Subsequent reads/writes of its public attributes (from controlled
    threads) become visible Read/Write events on ``var:py.<name>.<attr>``
    locations.  ``attrs`` restricts interception to the given names.
    Requires an instance with a ``__dict__`` (most plain classes).
    """
    ctx = gate.active_context()
    if ctx is None:
        raise ProgramError("track() outside a substrate execution")
    if not hasattr(obj, "__dict__"):
        raise ProgramError(f"track() requires an instance with __dict__, got {type(obj).__name__}")
    d = obj.__dict__
    if isinstance(d.get("_substrate_track"), _TrackState):
        return obj
    cls = type(obj)
    obj.__class__ = _tracked_class(cls)
    label = name or f"obj{ctx.next_index('tracked')}"
    frozen = frozenset(attrs) if attrs is not None else None
    d["_substrate_track"] = _TrackState(ctx, label, frozen)
    return obj


# ----------------------------------------------------------------------
# Module-global tracking (settrace opcode observer)
# ----------------------------------------------------------------------
class _ModuleInfo:
    __slots__ = ("label", "names", "module")

    def __init__(self, label: str, names: frozenset[str], module: ModuleType):
        self.label = label
        self.names = names
        self.module = module


class Observer:
    """Per-execution settrace observer for opted-in module globals."""

    def __init__(self, ctx: SubstrateContext):
        self._ctx = ctx
        #: filename -> registered module info.
        self._files: dict[str, _ModuleInfo] = {}
        #: (module label, global name) -> SharedVar.
        self._vars: dict[tuple[str, str], SharedVar] = {}
        #: code object -> offset plan (None = nothing tracked in this code).
        self._plans: dict[CodeType, dict[int, tuple[str, str, str]] | None] = {}

    def register_module(self, module: ModuleType, names: Iterable[str]) -> None:
        """Track ``LOAD_GLOBAL``/``STORE_GLOBAL`` of ``names`` in ``module``."""
        filename = getattr(module, "__file__", None)
        if filename is None:
            raise ProgramError(f"cannot observe module {module.__name__!r} without __file__")
        label = module.__name__.rsplit(".", 1)[-1]
        self._files[filename] = _ModuleInfo(label, frozenset(names), module)

    def var_for(self, info: _ModuleInfo, name: str) -> SharedVar:
        key = (info.label, name)
        var = self._vars.get(key)
        if var is None:
            var = self._vars[key] = SharedVar(
                f"py.{info.label}.{name}", getattr(info.module, name, None)
            )
        return var

    def _plan_for(self, code: CodeType) -> dict[int, tuple[str, str, str]] | None:
        """instruction offset -> ("load"|"store", global name, loc label)."""
        if code in self._plans:
            return self._plans[code]
        info = self._files.get(code.co_filename)
        plan: dict[int, tuple[str, str, str]] | None = None
        if info is not None and info.names.intersection(code.co_names):
            plan = {}
            line = code.co_firstlineno
            for instr in dis.get_instructions(code):
                if instr.starts_line is not None:
                    line = instr.starts_line
                if instr.opname in ("LOAD_GLOBAL", "STORE_GLOBAL") and instr.argval in info.names:
                    kind = "load" if instr.opname == "LOAD_GLOBAL" else "store"
                    plan[instr.offset] = (kind, instr.argval, f"{code.co_name}:{line}")
            plan = plan or None
        self._plans[code] = plan
        return plan

    def trace_function(self) -> Callable[..., Any]:
        """The ``sys.settrace`` callable installed in controlled threads."""

        def trace(frame: FrameType, event: str, arg: Any):
            if event == "call":
                plan = self._plan_for(frame.f_code)
                if plan is None:
                    return None
                frame.f_trace_opcodes = True
                return trace
            if event == "opcode":
                plan = self._plans.get(frame.f_code)
                if plan:
                    hit = plan.get(frame.f_lasti)
                    if hit is not None:
                        kind, name, loc = hit
                        info = self._files[frame.f_code.co_filename]
                        var = self.var_for(info, name)
                        if kind == "load":
                            # Sync the mirror, then park *before* the load:
                            # the instruction then reads whatever interleaved
                            # tracked stores left behind — matching the rf
                            # edge the executor records at event time.
                            var.value = frame.f_globals.get(name)
                            self._ctx.call(ops.ReadOp(var=var, loc=loc))
                        else:
                            # Park *before* the store runs: a thread held
                            # here has loaded but not stored, so scheduling
                            # another thread in between loses this update —
                            # the real interleaving the trace advertises.
                            self._ctx.call(ops.WriteOp(var=var, value="?", loc=loc))
            return trace

        return trace
