"""Cooperative-serialization gate for real OS threads.

This is the substrate's core trick: every *real* Python thread of the
program under test is parked on a per-thread rendezvous (:class:`OpChannel`)
and released exactly one at a time from the existing executor's
candidate-selection point.  Each real thread is mirrored by a *bridge
generator* registered with the executor as an ordinary program thread: when
the real thread reaches a visible operation (a shim lock acquire, a tracked
attribute access, ...) it hands the :class:`~repro.runtime.ops.Op` to its
channel and blocks; the bridge yields the op into the executor, and when the
scheduler policy picks this thread the op's result is handed back and the
real thread resumes.  RandomWalk/PCT/POS/replay policies, the reads-from
feedback, online sanitizers and triage all operate on the bridge generators
exactly as they do on DSL programs — they cannot tell the difference.

The rendezvous is built on raw ``_thread`` locks, *not* on ``threading``
primitives: the shim layer monkeypatches ``threading.Lock`` and friends for
the duration of an execution, and the gate must keep working underneath its
own patches.  Real threads are likewise spawned with
``_thread.start_new_thread`` so the patched ``threading.Thread`` never
bootstraps harness threads.

Exactly one real thread runs at any moment: the executor resumes a thread
and immediately blocks waiting for its next message, so thread-local code
between two visible operations executes atomically — the same semantics the
generator DSL gets from ``yield``.

Teardown: the executor runs execution-scoped cleanups (``Api.add_cleanup``)
after closing every thread generator; the context's :meth:`finalize` aborts
all parked threads by resuming them with :class:`SubstrateAbort` (a
``BaseException``, so ordinary ``except Exception`` handlers in program code
cannot swallow it), joins them, and restores the stdlib patches.
"""

from __future__ import annotations

import _thread
import gc
import os
import sys
import threading
from typing import Any, Callable, Generator

from repro.runtime import ops
from repro.runtime.errors import (
    AssertionViolation,
    ProgramError,
    RuntimeViolation,
    UncaughtProgramException,
)

#: How long finalize waits for an aborted real thread to exit before
#: declaring the execution wedged (a harness error, not a finding).
JOIN_TIMEOUT = 10.0

#: Thread-local holding the controlled thread's OpChannel (None elsewhere).
_TL = threading.local()

#: The process's single active substrate context (executions never nest).
_ACTIVE: "SubstrateContext | None" = None

#: Absolute filenames of substrate-internal modules; frames in these files
#: are harness machinery and are skipped by call-site and traceback labels.
_INTERNAL_FILES: set[str] = {os.path.abspath(__file__)}

#: filename -> is-internal memo (os.path.abspath per frame is not free).
_INTERNAL_MEMO: dict[str, bool] = {}

#: (code object, lineno) -> "name:lineno" label memo, same format as the
#: executor's ``_derive_loc`` so dedup keys hash DSL and substrate frames
#: interchangeably.
_LOC_LABELS: dict[tuple[Any, int], str] = {}


def register_internal_file(path: str) -> None:
    """Mark a module file as substrate machinery (excluded from loc labels)."""
    _INTERNAL_FILES.add(os.path.abspath(path))
    _INTERNAL_MEMO.clear()


def _is_internal(filename: str) -> bool:
    flag = _INTERNAL_MEMO.get(filename)
    if flag is None:
        flag = _INTERNAL_MEMO[filename] = os.path.abspath(filename) in _INTERNAL_FILES
    return flag


def call_site() -> str:
    """A stable ``function:line`` label for the program code calling a shim.

    Walks past substrate-internal frames to the user call site, mirroring
    the role of :func:`repro.runtime.executor._derive_loc` for DSL programs:
    identical program points receive identical labels across executions,
    which is what makes abstract events and triage keys stable.
    """
    frame = sys._getframe(1)
    while frame is not None and _is_internal(frame.f_code.co_filename):
        frame = frame.f_back
    if frame is None:  # pragma: no cover - shims are always called from somewhere
        return "?:?"
    key = (frame.f_code, frame.f_lineno)
    label = _LOC_LABELS.get(key)
    if label is None:
        label = _LOC_LABELS[key] = f"{frame.f_code.co_name}:{frame.f_lineno}"
    return label


def frames_from_traceback(tb) -> tuple[str, ...]:
    """Program-code ``function:line`` frames of a real-thread traceback."""
    frames = []
    while tb is not None:
        code = tb.tb_frame.f_code
        if not _is_internal(code.co_filename):
            frames.append(f"{code.co_name}:{tb.tb_lineno}")
        tb = tb.tb_next
    return tuple(frames)


class SubstrateAbort(BaseException):
    """Raised inside a parked real thread to unwind it at teardown.

    Derives from ``BaseException`` so program-level ``except Exception``
    blocks cannot accidentally swallow the teardown signal.
    """


class OpChannel:
    """One real thread's rendezvous with its bridge generator.

    Strict alternation protocol on two raw pre-acquired locks:

    * real thread: store message, release ``_msg_ready``, block acquiring
      ``_reply_ready``;
    * bridge (executor thread): acquire ``_msg_ready``, yield the op, store
      the reply, release ``_reply_ready``.

    ``done`` is released exactly once, when the real OS thread exits; it is
    the join point finalize waits on.
    """

    __slots__ = (
        "ctx",
        "name",
        "aborted",
        "done",
        "finished",
        "in_call",
        "_msg",
        "_reply",
        "_msg_ready",
        "_reply_ready",
    )

    def __init__(self, ctx: "SubstrateContext", name: str):
        self.ctx = ctx
        self.name = name
        self.aborted = False
        self.finished = False
        self.in_call = False
        self._msg: tuple[str, Any] | None = None
        self._reply: tuple[str, Any] | None = None
        self._msg_ready = _thread.allocate_lock()
        self._msg_ready.acquire()
        self._reply_ready = _thread.allocate_lock()
        self._reply_ready.acquire()
        self.done = _thread.allocate_lock()
        self.done.acquire()

    # -- real-thread side ------------------------------------------------
    def call(self, op: ops.Op) -> Any:
        """Submit one op, park until the executor schedules it, return its result."""
        if self.aborted or self.ctx.closed:
            raise SubstrateAbort
        if self.finished:
            # The thread already delivered its final done/crash message; an
            # op can only arrive here from a finalizer running during the
            # thread's own teardown (e.g. the traceback drop after `crash`
            # releases the last reference to a ThreadPoolExecutor, whose
            # weakref callback then pokes its work queue).  Rendezvousing
            # would clobber the pending final message — abort instead; the
            # interpreter suppresses exceptions at finalizer boundaries.
            raise SubstrateAbort
        if self.in_call:
            # An asynchronous callback (weakref finalizer, __del__) fired
            # inside an in-progress rendezvous and reached a shim object.
            # Re-entering would corrupt the strict alternation protocol;
            # refuse instead — the interpreter reports and suppresses the
            # error at the callback boundary.  The cyclic GC is disabled
            # during executions precisely to keep this path unreachable.
            raise RuntimeError(
                "re-entrant substrate operation from an asynchronous callback"
            )
        self.in_call = True
        try:
            self._msg = ("op", op)
            self._msg_ready.release()
            self._reply_ready.acquire()
            kind, payload = self._reply  # type: ignore[misc]
            self._reply = None
        finally:
            self.in_call = False
        if kind == "abort":
            raise SubstrateAbort
        return payload

    def finish(self, value: Any) -> None:
        self.finished = True
        self._msg = ("done", value)
        self._msg_ready.release()

    def crash(self, violation: RuntimeViolation) -> None:
        self.finished = True
        self._msg = ("crash", violation)
        self._msg_ready.release()

    # -- executor (bridge) side ------------------------------------------
    def next_message(self) -> tuple[str, Any]:
        self._msg_ready.acquire()
        msg = self._msg
        self._msg = None
        return msg  # type: ignore[return-value]

    def resume(self, value: Any) -> None:
        self._reply = ("value", value)
        self._reply_ready.release()

    def abort(self) -> None:
        """Unpark the real thread with :class:`SubstrateAbort` (idempotent).

        At teardown every live real thread is parked in ``call`` (the
        executor only tears down between complete rendezvous), so releasing
        the reply lock here hands it the abort; a thread that has already
        exited simply never consumes the token.
        """
        if self.aborted:
            return
        self.aborted = True
        self._reply = ("abort", None)
        try:
            self._reply_ready.release()
        except RuntimeError:  # pragma: no cover - defensive: already released
            pass


class SubstrateContext:
    """Execution-scoped state: channels, patches, naming and the observer.

    One context is created per execution by the ``Program.main`` adapter
    (:mod:`repro.substrate.program`), activated on the executor thread, and
    finalized by the executor's cleanup hook whatever the outcome.
    """

    def __init__(self, name: str):
        self.name = name
        self.closed = False
        self.api = None
        self.channels: list[OpChannel] = []
        self._counters: dict[str, int] = {}
        #: (target object, attribute name, original value) patch undo stack.
        self._patches: list[tuple[Any, str, Any]] = []
        #: Optional shared-memory observer (set by the program adapter).
        self.observer = None
        self._gc_was_enabled = False

    # -- naming ----------------------------------------------------------
    def next_index(self, kind: str) -> int:
        """Deterministic per-kind counter (shim object / thread naming)."""
        index = self._counters.get(kind, 0)
        self._counters[kind] = index + 1
        return index

    # -- activation / teardown -------------------------------------------
    def activate(self, api) -> None:
        """Install the stdlib patches and register teardown with the executor.

        Runs on the executor thread (inside the main generator's first
        advance).  The cleanup is registered *before* patching so a failure
        mid-install is still rolled back.
        """
        global _ACTIVE
        if _ACTIVE is not None:
            raise ProgramError(
                "nested substrate executions are not supported "
                f"(active: {_ACTIVE.name!r}, new: {self.name!r})"
            )
        _ACTIVE = self
        self.api = api
        api.add_cleanup(self.finalize)
        # The cyclic collector runs finalizers (TPE weakref wake-ups, __del__)
        # at allocation-dependent moments — nondeterministic across the
        # process and capable of firing *inside* a gate rendezvous.  Pause it
        # for the execution; refcount-zero finalizers still run, but at
        # schedule-deterministic program points between visible ops.
        self._gc_was_enabled = gc.isenabled()
        gc.disable()
        from repro.substrate import shim

        shim.install(self)

    def add_patch(self, target: Any, attr: str, value: Any) -> None:
        """Set ``target.attr = value``, remembering the original for finalize."""
        self._patches.append((target, attr, getattr(target, attr)))
        setattr(target, attr, value)

    def finalize(self) -> None:
        """Abort parked threads, join them, and restore every patch."""
        global _ACTIVE
        self.closed = True
        stuck: list[str] = []
        try:
            for channel in self.channels:
                channel.abort()
            for channel in self.channels:
                if channel.done.acquire(True, JOIN_TIMEOUT):
                    channel.done.release()
                else:  # pragma: no cover - requires a wedged native call
                    stuck.append(channel.name)
        finally:
            while self._patches:
                target, attr, original = self._patches.pop()
                setattr(target, attr, original)
            if self._gc_was_enabled:
                gc.enable()
            if _ACTIVE is self:
                _ACTIVE = None
        if stuck:  # pragma: no cover - requires a wedged native call
            raise ProgramError(
                f"substrate threads did not terminate at teardown: {', '.join(stuck)}"
            )

    # -- controlled-thread plumbing --------------------------------------
    def is_controlled(self) -> bool:
        """Whether the *calling* OS thread belongs to this execution."""
        channel = getattr(_TL, "channel", None)
        return (
            channel is not None
            and channel.ctx is self
            and not channel.finished
            and not self.closed
        )

    def call(self, op: ops.Op) -> Any:
        """Submit ``op`` from the calling controlled thread and await its result."""
        channel = getattr(_TL, "channel", None)
        if channel is None or channel.ctx is not self:
            raise RuntimeError(
                "substrate operation outside a controlled thread "
                "(shim objects must not escape the execution)"
            )
        return channel.call(op)

    def bridge(self, fn: Callable[[], Any], name: str) -> Generator[ops.Op, Any, Any]:
        """A program-thread generator forwarding one real thread's ops.

        The OS thread is launched lazily on the generator's first advance,
        which the executor performs synchronously — so user code in the new
        thread never overlaps executor bookkeeping.
        """
        channel = OpChannel(self, name)
        self.channels.append(channel)
        _thread.start_new_thread(self._thread_main, (channel, fn))
        kind, payload = channel.next_message()
        while kind == "op":
            reply = yield payload
            channel.resume(reply)
            kind, payload = channel.next_message()
        if kind == "crash":
            raise payload
        return payload

    def spawn_adapter(self, fn: Callable[[], Any], name: str) -> Callable[..., Any]:
        """A ``SpawnOp.fn`` launching ``fn`` as a bridged real thread."""

        def bridge_fn(api):
            return self.bridge(fn, name)

        bridge_fn.__name__ = name
        return bridge_fn

    # -- the real-thread trampoline --------------------------------------
    def _thread_main(self, channel: OpChannel, fn: Callable[[], Any]) -> None:
        _TL.channel = channel
        observer = self.observer
        tracer = observer.trace_function() if observer is not None else None
        try:
            if tracer is not None:
                sys.settrace(tracer)
            try:
                result = fn()
            finally:
                if tracer is not None:
                    sys.settrace(None)
        except SubstrateAbort:
            pass
        except RuntimeViolation as violation:
            if not violation.frames:
                violation.frames = frames_from_traceback(violation.__traceback__)
            if not self.closed:
                channel.crash(violation)
        except AssertionError as exc:
            # Plain `assert` in real code is the paper's crash oracle.
            if not self.closed:
                violation = AssertionViolation(str(exc) or "assertion failed")
                violation.frames = frames_from_traceback(exc.__traceback__)
                channel.crash(violation)
        except BaseException as exc:  # noqa: BLE001 - converted into a finding
            if not self.closed:
                channel.crash(
                    UncaughtProgramException(
                        type(exc).__name__, str(exc), frames_from_traceback(exc.__traceback__)
                    )
                )
        else:
            if not self.closed:
                channel.finish(result)
        finally:
            _TL.channel = None
            channel.done.release()


def active_context() -> SubstrateContext | None:
    """The process's active substrate context, if an execution is running."""
    return _ACTIVE


def current_channel() -> OpChannel | None:
    """The calling OS thread's channel (None outside controlled threads)."""
    return getattr(_TL, "channel", None)
