"""Real-Python ``threading`` substrate: fuzz actual stdlib-concurrent code.

A second substrate underneath the whole RFF stack (ROADMAP item 1, the
Fray-style "general-purpose platform" leap): real OS threads are parked on
per-thread gates and released one at a time from the existing executor's
candidate-selection point, stdlib sync primitives are shimmed onto
``repro.runtime.objects`` equivalents, and opted-in shared memory feeds the
reads-from relation through a settrace/class-swap observer.  Everything
above the substrate line — schedulers, RFF feedback, sanitizers, campaign,
triage, replay — applies verbatim.

Public surface:

* :func:`py_program` / :data:`PyProgram` — wrap real-Python callables into
  a :class:`~repro.runtime.program.Program`.
* :func:`track` — opt an object's attributes into shared-memory observation.
* The ``py:`` benchmark namespace (:mod:`repro.bench.pybench`) registers
  the seed targets with the global registry.
"""

from repro.substrate.gate import SubstrateAbort, SubstrateContext, active_context
from repro.substrate.observer import Observer, track
from repro.substrate.program import PyProgram, py_program

__all__ = [
    "Observer",
    "PyProgram",
    "SubstrateAbort",
    "SubstrateContext",
    "active_context",
    "py_program",
    "track",
]
