"""Adapt real-Python callables to the :class:`~repro.runtime.program.Program` interface.

:func:`py_program` wraps a plain callable (or a callable-per-thread spec)
into a ``Program`` whose ``main`` generator activates a
:class:`SubstrateContext`, bridges the entry callable as thread 0, and lets
every ``threading.Thread`` the entry starts become a bridged real thread.
The resulting ``Program`` is indistinguishable from a DSL benchmark to the
executor, schedulers, fuzzer, campaign and triage layers.
"""

from __future__ import annotations

from types import ModuleType
from typing import Any, Callable, Iterable, Sequence

from repro.runtime.program import Program
from repro.substrate.gate import SubstrateContext
from repro.substrate.observer import Observer

#: (module, iterable of global names) specs for the settrace observer.
GlobalSpec = Iterable[tuple[ModuleType, Iterable[str]]]


def _spawn_and_join(threads: Sequence[Callable[[], Any]]) -> Callable[[], None]:
    """Synthesize an entry spawning one ``threading.Thread`` per callable."""

    def entry() -> None:
        import threading

        workers = [
            threading.Thread(target=fn, name=getattr(fn, "__name__", f"worker{i}"))
            for i, fn in enumerate(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    return entry


def py_program(
    name: str,
    entry: Callable[[], Any] | None = None,
    *,
    threads: Sequence[Callable[[], Any]] = (),
    bug_kinds: tuple[str, ...] = (),
    description: str = "",
    max_steps: int | None = None,
    track_globals: GlobalSpec | None = None,
) -> Program:
    """Build a ``Program`` fuzzing real ``threading`` code.

    ``entry`` runs as the controlled main thread with the stdlib shims
    installed; alternatively pass ``threads`` (a callable per worker) and an
    entry that starts and joins them is synthesized.  ``track_globals``
    attaches the settrace observer to the given module globals.
    """
    if entry is None:
        if not threads:
            raise ValueError("py_program needs an entry callable or a threads spec")
        entry = _spawn_and_join(threads)
    # Materialize the spec once: Program factories must be pure.
    global_spec = (
        tuple((module, tuple(names)) for module, names in track_globals)
        if track_globals
        else ()
    )

    def main(api):
        ctx = SubstrateContext(name)
        if global_spec:
            observer = Observer(ctx)
            for module, names in global_spec:
                observer.register_module(module, names)
            ctx.observer = observer
        ctx.activate(api)
        return (yield from ctx.bridge(entry, "main"))

    return Program(
        name=name,
        main=main,
        bug_kinds=frozenset(bug_kinds),
        suite="py",
        mc_supported=False,
        description=description or (entry.__doc__ or "").strip(),
        max_steps=max_steps,
    )


#: Discoverability alias: the ISSUE-level name for the adapter.
PyProgram = py_program
