"""Stdlib-compatible shims submitting runtime ops through the gate.

Each class here mirrors one ``threading``/``queue`` primitive closely enough
for real concurrent code to run unmodified, while every visible operation is
routed through :meth:`SubstrateContext.call` as an existing runtime op
(``LockOp``, ``WaitOp``, ``SemAcquireOp``, ...).  :func:`install`
monkeypatches the stdlib constructors for the duration of one execution;
code running in *uncontrolled* threads (or outside an execution) always
receives the real primitives, so the patches are invisible to the rest of
the process.

Faithfulness notes (also in docs/API.md):

* Timeouts are treated as blocking: ``acquire(timeout=5)`` models the
  untimed acquire (a timeout of exactly ``0`` is the non-blocking probe).
  Deterministic schedules cannot honour wall-clock timeouts.
* Lock misuse (releasing an unheld lock, waiting without the lock) raises
  the same ``RuntimeError`` the stdlib raises — inside the controlled
  thread, so it surfaces as an ``exception`` finding, not a harness error.
* ``threading.Thread`` is patched with a factory, so ``Thread`` *subclasses*
  defined before the execution bind the real class and are not controlled;
  use the ``target=`` style (as ``concurrent.futures`` does).
* Shim objects are execution-scoped: using one after its execution finished
  raises ``RuntimeError``.
"""

from __future__ import annotations

import queue as _queue_module
import threading as _threading_module
import time as _time_module
import weakref
from collections import deque
from typing import Any, Callable

from repro.runtime import ops
from repro.runtime.objects import Barrier, CondVar, Mutex, Semaphore, SharedVar
from repro.substrate import gate
from repro.substrate.gate import OpChannel, SubstrateContext, call_site

gate.register_internal_file(__file__)

Empty = _queue_module.Empty
Full = _queue_module.Full


# ----------------------------------------------------------------------
# Locks
# ----------------------------------------------------------------------
class ShimLock:
    """``threading.Lock`` on a runtime :class:`Mutex`.

    Ownership is tracked shim-side (``error_checking=False`` at the runtime
    level) so program-level misuse raises ``RuntimeError`` — a finding —
    instead of aborting the harness.  Like the stdlib lock, any thread may
    release it.
    """

    def __init__(self, ctx: SubstrateContext, name: str | None = None):
        self._ctx = ctx
        self._mutex = Mutex(name or f"py.lock{ctx.next_index('lock')}", error_checking=False)
        self._owner: OpChannel | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        loc = call_site()
        if not blocking or timeout == 0:
            ok = self._ctx.call(ops.TryLockOp(mutex=self._mutex, loc=loc))
            if ok:
                self._owner = gate.current_channel()
            return ok
        self._ctx.call(ops.LockOp(mutex=self._mutex, loc=loc))
        self._owner = gate.current_channel()
        return True

    def release(self) -> None:
        if self._owner is None:
            raise RuntimeError("release unlocked lock")
        self._owner = None
        self._ctx.call(ops.UnlockOp(mutex=self._mutex, loc=call_site()))

    def locked(self) -> bool:
        return self._mutex.held

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    # -- Condition plumbing (atomic release inside WaitOp) ---------------
    def _presuspend(self, channel: OpChannel | None) -> int:
        if channel is None or self._owner is not channel:
            raise RuntimeError("cannot wait on un-acquired lock")
        self._owner = None
        return 1

    def _postresume(self, channel: OpChannel, state: int) -> None:
        self._owner = channel

    def _owned_by(self, channel: OpChannel | None) -> bool:
        return channel is not None and self._owner is channel


class ShimRLock:
    """``threading.RLock``: reentrant acquires stay thread-local (no op)."""

    def __init__(self, ctx: SubstrateContext, name: str | None = None):
        self._ctx = ctx
        self._mutex = Mutex(name or f"py.rlock{ctx.next_index('rlock')}", error_checking=False)
        self._owner: OpChannel | None = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        channel = gate.current_channel()
        if channel is not None and self._owner is channel:
            self._count += 1
            return True
        loc = call_site()
        if not blocking or timeout == 0:
            ok = self._ctx.call(ops.TryLockOp(mutex=self._mutex, loc=loc))
            if not ok:
                return False
        else:
            self._ctx.call(ops.LockOp(mutex=self._mutex, loc=loc))
        self._owner = gate.current_channel()
        self._count = 1
        return True

    def release(self) -> None:
        channel = gate.current_channel()
        if channel is None or self._owner is not channel:
            raise RuntimeError("cannot release un-acquired lock")
        self._count -= 1
        if self._count == 0:
            self._owner = None
            self._ctx.call(ops.UnlockOp(mutex=self._mutex, loc=call_site()))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def _is_owned(self) -> bool:
        return self._owned_by(gate.current_channel())

    def _presuspend(self, channel: OpChannel | None) -> int:
        if channel is None or self._owner is not channel:
            raise RuntimeError("cannot wait on un-acquired lock")
        state = self._count
        self._owner = None
        self._count = 0
        return state

    def _postresume(self, channel: OpChannel, state: int) -> None:
        self._owner = channel
        self._count = state

    def _owned_by(self, channel: OpChannel | None) -> bool:
        return channel is not None and self._owner is channel


class ShimCondition:
    """``threading.Condition`` on a runtime :class:`CondVar`.

    ``wait`` submits a single ``WaitOp`` — the executor releases the lock,
    parks the thread and re-acquires on wakeup atomically, exactly like
    ``pthread_cond_wait`` — so shim-side lock state is saved/restored around
    the suspension.
    """

    def __init__(self, ctx: SubstrateContext, lock: ShimLock | ShimRLock | None = None):
        self._ctx = ctx
        self._lock = lock if lock is not None else ShimRLock(ctx)
        self._cond = CondVar(f"py.cond{ctx.next_index('cond')}")

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        return self._lock.acquire(*args, **kwargs)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> bool:
        return self._lock.acquire()

    def __exit__(self, *exc: Any) -> None:
        self._lock.release()

    def wait(self, timeout: float | None = None) -> bool:
        channel = gate.current_channel()
        state = self._lock._presuspend(channel)
        self._ctx.call(ops.WaitOp(cond=self._cond, mutex=self._lock._mutex, loc=call_site()))
        self._lock._postresume(channel, state)  # type: ignore[arg-type]
        return True

    def wait_for(self, predicate: Callable[[], Any], timeout: float | None = None) -> Any:
        result = predicate()
        while not result:
            self.wait()
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        if not self._lock._owned_by(gate.current_channel()):
            raise RuntimeError("cannot notify on un-acquired lock")
        loc = call_site()
        for _ in range(n):
            self._ctx.call(ops.SignalOp(cond=self._cond, loc=loc))

    def notify_all(self) -> None:
        if not self._lock._owned_by(gate.current_channel()):
            raise RuntimeError("cannot notify on un-acquired lock")
        self._ctx.call(ops.BroadcastOp(cond=self._cond, loc=call_site()))

    notifyAll = notify_all


# ----------------------------------------------------------------------
# Semaphores, events, barriers
# ----------------------------------------------------------------------
class ShimSemaphore:
    """``threading.Semaphore``; non-blocking probes use ``TrySemAcquireOp``."""

    def __init__(self, ctx: SubstrateContext, value: int = 1):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self._ctx = ctx
        self._sem = Semaphore(f"py.sem{ctx.next_index('sem')}", init=value)

    def acquire(self, blocking: bool = True, timeout: float | None = None) -> bool:
        loc = call_site()
        if not blocking or timeout == 0:
            return self._ctx.call(ops.TrySemAcquireOp(sem=self._sem, loc=loc))
        self._ctx.call(ops.SemAcquireOp(sem=self._sem, loc=loc))
        return True

    def release(self, n: int = 1) -> None:
        loc = call_site()
        for _ in range(n):
            self._ctx.call(ops.SemReleaseOp(sem=self._sem, loc=loc))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()


class ShimBoundedSemaphore(ShimSemaphore):
    """``threading.BoundedSemaphore``: over-release raises ``ValueError``."""

    def __init__(self, ctx: SubstrateContext, value: int = 1):
        super().__init__(ctx, value)
        self._initial = value

    def release(self, n: int = 1) -> None:
        # The count read and the check run atomically (between gate ops).
        if self._sem.count + n > self._initial:
            raise ValueError("Semaphore released too many times")
        super().release(n)


class ShimEvent:
    """``threading.Event`` as flag + condvar (the stdlib's own algorithm)."""

    def __init__(self, ctx: SubstrateContext):
        index = ctx.next_index("event")
        self._ctx = ctx
        self._flag = SharedVar(f"py.event{index}", 0)
        self._mutex = Mutex(f"py.event{index}.mutex", error_checking=False)
        self._cond = CondVar(f"py.event{index}.cond")

    def is_set(self) -> bool:
        return bool(self._ctx.call(ops.ReadOp(var=self._flag, loc=call_site())))

    isSet = is_set

    def set(self) -> None:
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        call(ops.WriteOp(var=self._flag, value=1, loc=loc))
        call(ops.BroadcastOp(cond=self._cond, loc=loc))
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))

    def clear(self) -> None:
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        call(ops.WriteOp(var=self._flag, value=0, loc=loc))
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))

    def wait(self, timeout: float | None = None) -> bool:
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        while not call(ops.ReadOp(var=self._flag, loc=loc)):
            call(ops.WaitOp(cond=self._cond, mutex=self._mutex, loc=loc))
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))
        return True


class ShimBarrier:
    """``threading.Barrier`` on the runtime's cyclic :class:`Barrier`.

    ``wait`` returns the deterministic arrival index (stdlib promises *some*
    unique index per party; ours is arrival order, stable per schedule).
    """

    def __init__(
        self,
        ctx: SubstrateContext,
        parties: int,
        action: Callable[[], None] | None = None,
        timeout: float | None = None,
    ):
        self._ctx = ctx
        self._barrier = Barrier(f"py.barrier{ctx.next_index('barrier')}", parties)
        self._action = action
        self._arrivals = 0
        self.parties = parties
        self.broken = False

    def wait(self, timeout: float | None = None) -> int:
        index = self._arrivals
        self._arrivals += 1
        if self._arrivals == self.parties:
            self._arrivals = 0
            if self._action is not None:
                # Stdlib runs the action in the last-arriving thread, before
                # any party is released.
                self._action()
        self._ctx.call(ops.BarrierOp(barrier=self._barrier, loc=call_site()))
        return index


# ----------------------------------------------------------------------
# Threads
# ----------------------------------------------------------------------
class ShimThread:
    """``threading.Thread`` (``target=`` style) bridged through ``SpawnOp``.

    ``__hash__`` is a deterministic per-execution counter so that code
    iterating sets of threads (``ThreadPoolExecutor.shutdown``) does so in
    a reproducible order — id-based hashes would leak address randomness
    into schedules.
    """

    def __init__(
        self,
        group: None = None,
        target: Callable[..., Any] | None = None,
        name: str | None = None,
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        daemon: bool | None = None,
        ctx: SubstrateContext,
    ):
        self._ctx = ctx
        self._index = ctx.next_index("thread")
        self._target = target
        self._args = tuple(args)
        self._kwargs = dict(kwargs or {})
        self.name = name or f"Thread-{self._index + 1}"
        self.daemon = bool(daemon) if daemon is not None else False
        self._started = False
        self._handle = None

    def __hash__(self) -> int:
        return self._index

    def start(self) -> None:
        if self._started:
            raise RuntimeError("threads can only be started once")
        loc = call_site()
        self._started = True
        self._handle = self._ctx.call(
            ops.SpawnOp(fn=self._ctx.spawn_adapter(self.run, self.name), name=self.name, loc=loc)
        )

    def run(self) -> None:
        if self._target is not None:
            self._target(*self._args, **self._kwargs)

    def join(self, timeout: float | None = None) -> None:
        if not self._started:
            raise RuntimeError("cannot join thread before it is started")
        self._ctx.call(ops.JoinOp(handle=self._handle, loc=call_site()))

    def is_alive(self) -> bool:
        return self._started and self._handle is not None and not self._handle.finished

    @property
    def ident(self) -> int | None:
        return self._handle.tid if self._handle is not None else None


# ----------------------------------------------------------------------
# Queues
# ----------------------------------------------------------------------
class ShimQueue:
    """``queue.Queue`` re-implemented on runtime mutex + condvars.

    Mirrors the stdlib algorithm (one mutex, ``not_empty``/``not_full``/
    ``all_tasks_done`` conditions) so producers and consumers interleave at
    exactly the synchronization points real code exercises.
    """

    def __init__(self, ctx: SubstrateContext, maxsize: int = 0):
        index = ctx.next_index("queue")
        self._ctx = ctx
        self.maxsize = maxsize
        self._mutex = Mutex(f"py.queue{index}.mutex", error_checking=False)
        self._not_empty = CondVar(f"py.queue{index}.not_empty")
        self._not_full = CondVar(f"py.queue{index}.not_full")
        self._all_done = CondVar(f"py.queue{index}.all_tasks_done")
        self._items: deque[Any] = deque()
        self._unfinished = 0

    # -- internal: all ops share the user call site ----------------------
    def put(self, item: Any, block: bool = True, timeout: float | None = None) -> None:
        if not self._ctx.is_controlled():
            # Late uncontrolled touch — e.g. ThreadPoolExecutor's weakref
            # finalizer waking workers after the execution ended.  The gate
            # is gone; mutate raw state instead of raising into a finalizer.
            self._items.append(item)
            self._unfinished += 1
            return
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        if 0 < self.maxsize:
            if not block:
                if len(self._items) >= self.maxsize:
                    call(ops.UnlockOp(mutex=self._mutex, loc=loc))
                    raise Full
            else:
                while len(self._items) >= self.maxsize:
                    call(ops.WaitOp(cond=self._not_full, mutex=self._mutex, loc=loc))
        self._items.append(item)
        self._unfinished += 1
        call(ops.SignalOp(cond=self._not_empty, loc=loc))
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))

    def get(self, block: bool = True, timeout: float | None = None) -> Any:
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        if not block:
            if not self._items:
                call(ops.UnlockOp(mutex=self._mutex, loc=loc))
                raise Empty
        else:
            while not self._items:
                call(ops.WaitOp(cond=self._not_empty, mutex=self._mutex, loc=loc))
        item = self._items.popleft()
        call(ops.SignalOp(cond=self._not_full, loc=loc))
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))
        return item

    def put_nowait(self, item: Any) -> None:
        self.put(item, block=False)

    def get_nowait(self) -> Any:
        return self.get(block=False)

    def qsize(self) -> int:
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        size = len(self._items)
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))
        return size

    def empty(self) -> bool:
        return self.qsize() == 0

    def full(self) -> bool:
        return 0 < self.maxsize <= self.qsize()

    def task_done(self) -> None:
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        unfinished = self._unfinished - 1
        if unfinished < 0:
            call(ops.UnlockOp(mutex=self._mutex, loc=loc))
            raise ValueError("task_done() called too many times")
        self._unfinished = unfinished
        if unfinished == 0:
            call(ops.BroadcastOp(cond=self._all_done, loc=loc))
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))

    def join(self) -> None:
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        while self._unfinished:
            call(ops.WaitOp(cond=self._all_done, mutex=self._mutex, loc=loc))
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))


class ShimSimpleQueue:
    """``queue.SimpleQueue``: unbounded, no task tracking (used by TPE)."""

    def __init__(self, ctx: SubstrateContext):
        index = ctx.next_index("squeue")
        self._ctx = ctx
        self._mutex = Mutex(f"py.squeue{index}.mutex", error_checking=False)
        self._not_empty = CondVar(f"py.squeue{index}.not_empty")
        self._items: deque[Any] = deque()

    def put(self, item: Any, block: bool = True, timeout: float | None = None) -> None:
        if not self._ctx.is_controlled():
            self._items.append(item)  # late uncontrolled touch (see ShimQueue.put)
            return
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        self._items.append(item)
        call(ops.SignalOp(cond=self._not_empty, loc=loc))
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))

    def get(self, block: bool = True, timeout: float | None = None) -> Any:
        loc = call_site()
        call = self._ctx.call
        call(ops.LockOp(mutex=self._mutex, loc=loc))
        if not block:
            if not self._items:
                call(ops.UnlockOp(mutex=self._mutex, loc=loc))
                raise Empty
        else:
            while not self._items:
                call(ops.WaitOp(cond=self._not_empty, mutex=self._mutex, loc=loc))
        item = self._items.popleft()
        call(ops.UnlockOp(mutex=self._mutex, loc=loc))
        return item

    def put_nowait(self, item: Any) -> None:
        self.put(item, block=False)

    def get_nowait(self) -> Any:
        return self.get(block=False)

    def qsize(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items


# ----------------------------------------------------------------------
# Patch window
# ----------------------------------------------------------------------
def _factory(ctx: SubstrateContext, shim_cls: type, real: Any) -> Callable[..., Any]:
    """A constructor returning the shim in controlled threads, else the real."""

    def make(*args: Any, **kwargs: Any) -> Any:
        if ctx.is_controlled():
            return shim_cls(*args, ctx=ctx, **kwargs) if shim_cls is ShimThread else shim_cls(ctx, *args, **kwargs)
        return real(*args, **kwargs)

    make.__name__ = getattr(real, "__name__", "factory")
    return make


def install(ctx: SubstrateContext) -> None:
    """Patch the stdlib for one execution; undone by ``ctx.finalize``.

    Patches are registered through :meth:`SubstrateContext.add_patch`, so a
    failure mid-install is still fully rolled back.
    """
    import concurrent.futures.thread as cf_thread
    from concurrent.futures import _base as cf_base

    patch = ctx.add_patch
    for attr, shim_cls in (
        ("Lock", ShimLock),
        ("RLock", ShimRLock),
        ("Condition", ShimCondition),
        ("Semaphore", ShimSemaphore),
        ("BoundedSemaphore", ShimBoundedSemaphore),
        ("Event", ShimEvent),
        ("Barrier", ShimBarrier),
        ("Thread", ShimThread),
    ):
        patch(_threading_module, attr, _factory(ctx, shim_cls, getattr(_threading_module, attr)))
    patch(_queue_module, "Queue", _factory(ctx, ShimQueue, _queue_module.Queue))
    patch(_queue_module, "SimpleQueue", _factory(ctx, ShimSimpleQueue, _queue_module.SimpleQueue))

    real_sleep = _time_module.sleep

    def sleep(seconds: float) -> None:
        if ctx.is_controlled():
            # A scheduling point: deterministic schedules cannot pass time,
            # but sleep() in real code marks exactly the windows racing
            # threads are expected to interleave in.
            ctx.call(ops.YieldOp(loc=call_site()))
        else:
            real_sleep(seconds)

    patch(_time_module, "sleep", sleep)

    # concurrent.futures keeps process-global state that would otherwise
    # couple executions (and real interpreter shutdown) to the harness:
    # give each execution a fresh shutdown lock / flag / thread registry,
    # and silence the worker's BaseException logging, which would fire for
    # every SubstrateAbort at teardown.
    patch(cf_thread, "_global_shutdown_lock", ShimLock(ctx))
    patch(cf_thread, "_shutdown", False)
    patch(cf_thread, "_threads_queues", weakref.WeakKeyDictionary())
    patch(cf_base.LOGGER, "disabled", True)
