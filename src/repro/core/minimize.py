"""Crash-schedule minimization (delta debugging over constraints).

A crashing abstract schedule produced by the fuzzer often carries
constraints that are incidental to the failure — leftovers of the mutation
history.  :func:`minimize_schedule` greedily removes constraints while the
crash still reproduces under the proactive scheduler, yielding the smallest
explanation of the bug (the `α_violation` of the paper's Section 2 rather
than whatever mutant happened to trip it first).

Because the proactive scheduler is randomized around the constraints, each
candidate schedule is probed over several seeds; a constraint is dropped
only when the reduced schedule still crashes reliably.  "Still crashes"
means *the same bug*: by default the minimizer first probes the original
schedule, takes the triage dedup key of the crash it reproduces, and then
only accepts reductions that land in that same bucket — ddmin must not
morph one bug into a different, easier-to-trigger one mid-minimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.constraints import AbstractSchedule
from repro.core.fuzzer import RffConfig
from repro.core.proactive import RffSchedulerPolicy
from repro.core.reproduce import dedup_key, same_bucket
from repro.runtime.executor import DEFAULT_MAX_STEPS, ExecutionResult, Executor
from repro.runtime.program import Program

#: Accepts an execution as "still failing" during minimization.
FailurePredicate = Callable[[ExecutionResult], bool]


def any_crash(result: ExecutionResult) -> bool:
    """The permissive legacy predicate: any crash counts."""
    return result.crashed


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of one minimization run."""

    original: AbstractSchedule
    minimized: AbstractSchedule
    #: Fraction of probe seeds under which the minimized schedule crashes.
    reproduction_rate: float
    executions: int
    #: Dedup key of the bug being preserved (None when minimizing with a
    #: caller-supplied predicate or when the original never reproduced).
    target_key: tuple[str, str, str] | None = None

    @property
    def removed(self) -> int:
        return len(self.original) - len(self.minimized)


def crash_rate(
    program: Program,
    schedule: AbstractSchedule,
    probes: int = 5,
    base_seed: int = 0,
    max_steps: int | None = None,
    still_failing: FailurePredicate = any_crash,
) -> float:
    """Fraction of ``probes`` seeds under which ``schedule`` still fails
    according to ``still_failing`` (default: any crash)."""
    steps = max_steps or program.max_steps or DEFAULT_MAX_STEPS
    failures = 0
    for probe in range(probes):
        policy = RffSchedulerPolicy(schedule, seed=base_seed + 31 * probe)
        result = Executor(program, policy, max_steps=steps).run()
        failures += bool(still_failing(result))
    return failures / probes


def _probe_target_key(
    program: Program,
    schedule: AbstractSchedule,
    probes: int,
    base_seed: int,
) -> tuple[tuple[str, str, str] | None, int]:
    """Dedup key of the bug the original schedule triggers (majority vote
    over the probe seeds), plus the executions spent probing."""
    steps = program.max_steps or DEFAULT_MAX_STEPS
    votes: dict[tuple[str, str, str], int] = {}
    for probe in range(probes):
        policy = RffSchedulerPolicy(schedule, seed=base_seed + 31 * probe)
        result = Executor(program, policy, max_steps=steps).run()
        if result.crashed:
            key = dedup_key(result)
            votes[key] = votes.get(key, 0) + 1
    if not votes:
        return None, probes
    # Majority bucket; ties broken deterministically by key.
    winner = min(votes, key=lambda k: (-votes[k], k))
    return winner, probes


def minimize_schedule(
    program: Program,
    schedule: AbstractSchedule,
    probes: int = 5,
    threshold: float = 0.6,
    base_seed: int = 0,
    config: RffConfig | None = None,
    still_failing: FailurePredicate | None = None,
) -> MinimizationResult:
    """Greedy one-constraint-at-a-time reduction (ddmin's 1-minimal core).

    A constraint is removed when the reduced schedule still fails on at
    least ``threshold`` of the probe seeds.  Runs until a fixpoint: the
    result is 1-minimal — removing any single remaining constraint drops
    the reproduction rate below the threshold.

    ``still_failing`` decides what counts as a reproduction.  When omitted,
    the original schedule is probed first and reductions must stay in the
    same triage bucket (:func:`repro.core.reproduce.dedup_key`) as the bug
    it triggers; if the original never reproduces, minimization degrades to
    the permissive any-crash predicate.
    """
    del config  # reserved for future knobs (kept for API stability)
    executions = 0
    target_key: tuple[str, str, str] | None = None
    if still_failing is None:
        target_key, spent = _probe_target_key(program, schedule, probes, base_seed)
        executions += spent
        still_failing = same_bucket(target_key) if target_key is not None else any_crash
    current = schedule
    improved = True
    while improved:
        improved = False
        for constraint in sorted(current.constraints, key=str):
            candidate = current.delete(constraint)
            rate = crash_rate(
                program,
                candidate,
                probes=probes,
                base_seed=base_seed,
                still_failing=still_failing,
            )
            executions += probes
            if rate >= threshold:
                current = candidate
                improved = True
    final_rate = crash_rate(
        program,
        current,
        probes=probes,
        base_seed=base_seed + 7,
        still_failing=still_failing,
    )
    executions += probes
    return MinimizationResult(
        original=schedule,
        minimized=current,
        reproduction_rate=final_rate,
        executions=executions,
        target_key=target_key,
    )
