"""Crash-schedule minimization (delta debugging over constraints).

A crashing abstract schedule produced by the fuzzer often carries
constraints that are incidental to the failure — leftovers of the mutation
history.  :func:`minimize_schedule` greedily removes constraints while the
crash still reproduces under the proactive scheduler, yielding the smallest
explanation of the bug (the `α_violation` of the paper's Section 2 rather
than whatever mutant happened to trip it first).

Because the proactive scheduler is randomized around the constraints, each
candidate schedule is probed over several seeds; a constraint is dropped
only when the reduced schedule still crashes reliably.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import AbstractSchedule
from repro.core.fuzzer import RffConfig
from repro.core.proactive import RffSchedulerPolicy
from repro.runtime.executor import DEFAULT_MAX_STEPS, Executor
from repro.runtime.program import Program


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of one minimization run."""

    original: AbstractSchedule
    minimized: AbstractSchedule
    #: Fraction of probe seeds under which the minimized schedule crashes.
    reproduction_rate: float
    executions: int

    @property
    def removed(self) -> int:
        return len(self.original) - len(self.minimized)


def crash_rate(
    program: Program,
    schedule: AbstractSchedule,
    probes: int = 5,
    base_seed: int = 0,
    max_steps: int | None = None,
) -> float:
    """Fraction of ``probes`` seeds under which ``schedule`` crashes."""
    steps = max_steps or program.max_steps or DEFAULT_MAX_STEPS
    crashes = 0
    for probe in range(probes):
        policy = RffSchedulerPolicy(schedule, seed=base_seed + 31 * probe)
        result = Executor(program, policy, max_steps=steps).run()
        crashes += result.crashed
    return crashes / probes


def minimize_schedule(
    program: Program,
    schedule: AbstractSchedule,
    probes: int = 5,
    threshold: float = 0.6,
    base_seed: int = 0,
    config: RffConfig | None = None,
) -> MinimizationResult:
    """Greedy one-constraint-at-a-time reduction (ddmin's 1-minimal core).

    A constraint is removed when the reduced schedule still crashes on at
    least ``threshold`` of the probe seeds.  Runs until a fixpoint: the
    result is 1-minimal — removing any single remaining constraint drops
    the reproduction rate below the threshold.
    """
    del config  # reserved for future knobs (kept for API stability)
    executions = 0
    current = schedule
    improved = True
    while improved:
        improved = False
        for constraint in sorted(current.constraints, key=str):
            candidate = current.delete(constraint)
            rate = crash_rate(program, candidate, probes=probes, base_seed=base_seed)
            executions += probes
            if rate >= threshold:
                current = candidate
                improved = True
    final_rate = crash_rate(program, current, probes=probes, base_seed=base_seed + 7)
    executions += probes
    return MinimizationResult(
        original=schedule,
        minimized=current,
        reproduction_rate=final_rate,
        executions=executions,
    )
