"""Abstract schedules: sets of (possibly negated) reads-from constraints.

Paper Section 3, "Abstract events and schedules": an abstract schedule
``α = α+ ⊎ α−`` is a set of positive constraints ``w --rf--> r`` and negative
constraints ``w -/rf/-> r`` over abstract events.  A concrete schedule
*instantiates* α when every positive constraint is witnessed by some actual
reads-from pair and no negative constraint is.

The write side of a constraint may be ``None``, denoting the location's
*initial* pseudo-write — e.g. the α_violation of the paper's Figure 1
requires ``r(b)`` to observe the initial value of ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import AbstractEvent
from repro.core.trace import RfPair, Trace


@dataclass(frozen=True, slots=True)
class Constraint:
    """One reads-from constraint ``w --rf--> r`` (or its negation).

    ``write is None`` denotes the initial pseudo-write of the location.
    Both sides must name the same memory location; the read side must be a
    read-capable abstract event and the write side write-capable.
    """

    read: AbstractEvent
    write: AbstractEvent | None
    positive: bool = True

    def __post_init__(self) -> None:
        if not self.read.is_read:
            raise ValueError(f"constraint read side {self.read} is not a read")
        if self.write is not None:
            if not self.write.is_write:
                raise ValueError(f"constraint write side {self.write} is not a write")
            if self.write.location != self.read.location:
                raise ValueError(
                    f"constraint spans locations {self.write.location} and {self.read.location}"
                )

    @property
    def location(self) -> str:
        return self.read.location

    @property
    def rf_pair(self) -> RfPair:
        return (self.write, self.read)

    def negated(self) -> "Constraint":
        """``¬C``: flip positive <-> negative (paper's negate operator)."""
        return Constraint(self.read, self.write, not self.positive)

    def witnessed_by(self, trace: Trace) -> bool:
        """True when some concrete rf pair of ``trace`` instantiates this pair."""
        return self.rf_pair in trace.rf_pairs()

    def __str__(self) -> str:
        arrow = "--rf->" if self.positive else "-/rf/->"
        writer = str(self.write) if self.write is not None else f"init({self.read.location})"
        return f"{writer} {arrow} {self.read}"


@dataclass(frozen=True, slots=True)
class AbstractSchedule:
    """An immutable set of reads-from constraints; the fuzzer's genotype."""

    constraints: frozenset[Constraint] = frozenset()

    @classmethod
    def empty(cls) -> "AbstractSchedule":
        """The ε schedule seeding the corpus (Algorithm 1, line 2)."""
        return cls(frozenset())

    @classmethod
    def of(cls, *constraints: Constraint) -> "AbstractSchedule":
        return cls(frozenset(constraints))

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    @property
    def positives(self) -> frozenset[Constraint]:
        return frozenset(c for c in self.constraints if c.positive)

    @property
    def negatives(self) -> frozenset[Constraint]:
        return frozenset(c for c in self.constraints if not c.positive)

    def insert(self, constraint: Constraint) -> "AbstractSchedule":
        return AbstractSchedule(self.constraints | {constraint})

    def delete(self, constraint: Constraint) -> "AbstractSchedule":
        return AbstractSchedule(self.constraints - {constraint})

    def swap(self, old: Constraint, new: Constraint) -> "AbstractSchedule":
        return AbstractSchedule((self.constraints - {old}) | {new})

    def negate(self, constraint: Constraint) -> "AbstractSchedule":
        return self.swap(constraint, constraint.negated())

    def instantiated_by(self, trace: Trace) -> bool:
        """Whether ``trace`` satisfies all positive and no negative constraints."""
        pairs = trace.rf_pairs()
        for constraint in self.constraints:
            witnessed = constraint.rf_pair in pairs
            if constraint.positive != witnessed:
                return False
        return True

    def __str__(self) -> str:
        if not self.constraints:
            return "α{}"
        body = ", ".join(sorted(str(c) for c in self.constraints))
        return f"α{{{body}}}"
