"""Proactive reads-from scheduling (paper Figure 2 and Section 3).

Given an abstract schedule, the proactive scheduler biases every scheduling
decision towards satisfying its constraints:

* **Positive** ``w --rf--> r`` (Figure 2a): while the desired write is not
  the last write on the location, delay any thread about to execute ``r``
  and boost threads about to execute ``w``; once ``w`` is the last write,
  boost ``r`` and delay every *other* write to the location so it is not
  overwritten.  Positive constraints are existential — satisfied once any
  instantiating rf pair executes, after which the constraint is retired.

* **Negative** ``w -/rf/-> r`` (Figure 2b): while the last write is not
  ``w``, greedily boost ``r`` (reading now is safe) and delay ``w``; once a
  ``w`` instance is the last write, delay ``r`` and boost any other write to
  the location to overwrite ``w``.  Negative constraints are universal — they
  are violated (REJECT) the moment an instantiating rf pair executes.

When no constraint expresses a preference — or preferences conflict — the
policy gracefully degrades to POS, exactly as described in Section 4.1
(step 3 of the scheduling algorithm).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.core.constraints import AbstractSchedule, Constraint
from repro.schedulers.base import SeededPolicy
from repro.schedulers.pos import PosPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.events import Event
    from repro.runtime.executor import Candidate, Executor


class Bias(enum.Enum):
    """A tracker's opinion about one candidate event."""

    PRIORITIZE = 1
    NEUTRAL = 0
    DEPRIORITIZE = -1


class TrackerState(enum.Enum):
    """Lifecycle of a constraint tracker (the ACCEPT/REJECT of Figure 2)."""

    ACTIVE = "active"
    SATISFIED = "satisfied"
    VIOLATED = "violated"
    #: A positive initial-value constraint becomes impossible after the
    #: first write to the location (the initial value can never return).
    IMPOSSIBLE = "impossible"


class ConstraintTracker:
    """Shared machinery of the Figure 2a / 2b state machines."""

    def __init__(self, constraint: Constraint):
        self.constraint = constraint
        self.state = TrackerState.ACTIVE

    @property
    def active(self) -> bool:
        return self.state is TrackerState.ACTIVE

    # -- helpers -------------------------------------------------------
    def _last_write_matches(self, execution: "Executor") -> bool:
        """Is the location's current last write an instance of ``w``?

        With ``w = None`` (initial pseudo-write) this holds until the first
        write to the location.
        """
        last = execution.last_write_event(self.constraint.location)
        if self.constraint.write is None:
            return last is None
        return last is not None and last.abstract == self.constraint.write

    def _event_matches_pair(self, event: "Event", execution: "Executor") -> bool:
        """Did ``event`` just witness the constraint's rf pair?"""
        if event.rf is None or event.abstract != self.constraint.read:
            return False
        if self.constraint.write is None:
            return event.rf == 0
        if event.rf == 0:
            return False
        writer = execution.trace.event_by_id(event.rf)
        return writer.abstract == self.constraint.write

    def bias(self, candidate: "Candidate", execution: "Executor") -> Bias:
        raise NotImplementedError

    def observe(self, event: "Event", execution: "Executor") -> None:
        raise NotImplementedError


class PositiveTracker(ConstraintTracker):
    """Figure 2a: drive the execution to witness ``w --rf--> r``."""

    def bias(self, candidate: "Candidate", execution: "Executor") -> Bias:
        if not self.active:
            return Bias.NEUTRAL
        constraint = self.constraint
        if candidate.location != constraint.location:
            return Bias.NEUTRAL
        abstract = candidate.abstract
        if self._last_write_matches(execution):
            # Blue states (q5, q6): the desired write is in place.
            if abstract == constraint.read:
                return Bias.PRIORITIZE
            if abstract.is_write and abstract != constraint.write:
                return Bias.DEPRIORITIZE  # do not overwrite w
            return Bias.NEUTRAL
        # Red states (q2, q4): the write is still missing.
        if abstract == constraint.read:
            return Bias.DEPRIORITIZE  # delay r until w lands
        if constraint.write is not None and abstract == constraint.write:
            return Bias.PRIORITIZE
        return Bias.NEUTRAL

    def observe(self, event: "Event", execution: "Executor") -> None:
        if not self.active:
            return
        if self._event_matches_pair(event, execution):
            self.state = TrackerState.SATISFIED
            return
        if self.constraint.write is None and event.is_write and event.location == self.constraint.location:
            # The initial value has been overwritten; a positive
            # init --rf--> r constraint can no longer be satisfied.
            self.state = TrackerState.IMPOSSIBLE


class NegativeTracker(ConstraintTracker):
    """Figure 2b: steer the execution away from witnessing ``w --rf--> r``."""

    def bias(self, candidate: "Candidate", execution: "Executor") -> Bias:
        if not self.active:
            return Bias.NEUTRAL
        constraint = self.constraint
        if candidate.location != constraint.location:
            return Bias.NEUTRAL
        abstract = candidate.abstract
        if self._last_write_matches(execution):
            # Yellow states (q5, q6): reading now would violate the
            # constraint; push another write in front of w.
            if abstract == constraint.read:
                return Bias.DEPRIORITIZE
            if abstract.is_write and abstract != constraint.write:
                return Bias.PRIORITIZE
            return Bias.NEUTRAL
        # Purple states (q1..q4): reading now is safe — do it greedily,
        # and hold the dangerous write back.
        if abstract == constraint.read:
            return Bias.PRIORITIZE
        if constraint.write is not None and abstract == constraint.write:
            return Bias.DEPRIORITIZE
        return Bias.NEUTRAL

    def observe(self, event: "Event", execution: "Executor") -> None:
        if not self.active:
            return
        if self._event_matches_pair(event, execution):
            # REJECT: the forbidden rf pair executed (e.g. only one thread
            # was runnable and the scheduler was forced).
            self.state = TrackerState.VIOLATED


def make_tracker(constraint: Constraint) -> ConstraintTracker:
    if constraint.positive:
        return PositiveTracker(constraint)
    return NegativeTracker(constraint)


class RffSchedulerPolicy(SeededPolicy):
    """The proactive reads-from scheduler: constraint bias over a POS core.

    Selection per Section 4.1: (1) only enabled threads are candidates,
    (2) constraint trackers partition candidates into prioritized / neutral /
    deprioritized tiers (a candidate both boosted and delayed by competing
    constraints is treated as neutral — the "multiple conflicting
    constraints" case), (3) POS breaks ties inside the chosen tier.  With an
    empty abstract schedule this is exactly POS.
    """

    def __init__(self, schedule: AbstractSchedule | None = None, seed: int | None = None):
        super().__init__(seed)
        self.schedule = schedule if schedule is not None else AbstractSchedule.empty()
        self.pos = PosPolicy(seed=self.rng.randrange(2**63))
        self.trackers: list[ConstraintTracker] = []

    def begin(self, execution: "Executor") -> None:
        self.pos.begin(execution)
        self.trackers = [make_tracker(c) for c in sorted(self.schedule.constraints, key=str)]

    def choose(self, candidates: "list[Candidate]", execution: "Executor") -> "Candidate":
        if len(candidates) == 1:
            # Forced step: trackers cannot change the outcome and have no
            # side effects in bias; draw the POS score (as the tier arg-max
            # would) so the rng stream stays identical.
            only = candidates[0]
            self.pos.score_of(only, execution)
            return only
        # Inactive trackers are always NEUTRAL — prefilter them once per
        # step instead of querying each per candidate.
        active = [t for t in self.trackers if t.state is TrackerState.ACTIVE]
        if not active:
            return self.pos.choose(candidates, execution)
        prioritized: list["Candidate"] = []
        neutral: list["Candidate"] = []
        deprioritized: list["Candidate"] = []
        for candidate in candidates:
            boost = delay = False
            for tracker in active:
                opinion = tracker.bias(candidate, execution)
                if opinion is Bias.PRIORITIZE:
                    boost = True
                elif opinion is Bias.DEPRIORITIZE:
                    delay = True
            if boost and not delay:
                prioritized.append(candidate)
            elif delay and not boost:
                deprioritized.append(candidate)
            else:
                neutral.append(candidate)
        tier = prioritized or neutral or deprioritized
        # PosPolicy.choose is the same first-maximal arg-max (and the same
        # score-draw order) as max(tier, key=score_of).
        return self.pos.choose(tier, execution)

    def notify(self, event: "Event", execution: "Executor") -> None:
        for tracker in self.trackers:
            if tracker.state is TrackerState.ACTIVE:
                tracker.observe(event, execution)
        self.pos.notify(event, execution)

    # -- campaign feedback ---------------------------------------------
    def satisfaction(self) -> tuple[int, int]:
        """(#constraints ending satisfied-or-unviolated, #constraints).

        Positive constraints count when SATISFIED; negative ones count when
        they were never VIOLATED.  Used as the scheduler-performance input to
        the power schedule's γ term.
        """
        if not self.trackers:
            return (0, 0)
        good = 0
        for tracker in self.trackers:
            if tracker.constraint.positive:
                good += tracker.state is TrackerState.SATISFIED
            else:
                good += tracker.state is not TrackerState.VIOLATED
        return good, len(self.trackers)
