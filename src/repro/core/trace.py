"""Concrete traces and the reads-from relation (paper Section 3).

A :class:`Trace` is the recorded sequence of events of one execution.  Its
reads-from function maps each read event to the write event it observed; two
traces are reads-from equivalent (``≡rf``) when they contain the same events
and the same reads-from function.  The hashable :meth:`Trace.rf_signature`
canonically summarises the equivalence class and drives both the fuzzer's
novelty feedback (Section 3, "Reads-from feedback") and the RQ3 frequency
histograms (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import AbstractEvent, Event

#: An abstract reads-from pair: (writer abstract event, reader abstract event).
#: The writer side is ``None`` when the read observed the location's initial
#: value (the paper's initial pseudo-write at "line 1").
RfPair = tuple[AbstractEvent | None, AbstractEvent]


@dataclass
class Trace:
    """An ordered event sequence plus the outcome of the execution."""

    events: list[Event] = field(default_factory=list)
    #: Bug kind string (e.g. "assertion", "deadlock", "use-after-free") or
    #: None when the execution completed normally.
    outcome: str | None = None
    #: Human-readable description of the failure, when any.
    failure: str | None = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def crashed(self) -> bool:
        return self.outcome is not None

    def event_by_id(self, eid: int) -> Event:
        # Event ids are assigned densely from 1 in execution order.
        event = self.events[eid - 1]
        if event.eid != eid:  # pragma: no cover - defensive; ids are dense
            raise KeyError(eid)
        return event

    def reads_from(self) -> dict[int, int]:
        """Map each read event id to the event id of its writer (0 = initial)."""
        return {e.eid: e.rf for e in self.events if e.rf is not None}

    def rf_pairs(self) -> set[RfPair]:
        """The set of *abstract* reads-from pairs exercised by this trace."""
        pairs: set[RfPair] = set()
        for event in self.events:
            if event.rf is None:
                continue
            writer = None if event.rf == 0 else self.event_by_id(event.rf).abstract
            pairs.add((writer, event.abstract))
        return pairs

    def rf_signature(self) -> frozenset[RfPair]:
        """Canonical hashable summary of the ``≡rf`` class of this trace."""
        return frozenset(self.rf_pairs())

    def abstract_events(self) -> set[AbstractEvent]:
        """All abstract events observed, the pool mutations draw from."""
        return {e.abstract for e in self.events}

    def memory_abstract_events(self) -> tuple[set[AbstractEvent], set[AbstractEvent]]:
        """Observed abstract (reads, writes) usable in reads-from constraints."""
        reads: set[AbstractEvent] = set()
        writes: set[AbstractEvent] = set()
        for event in self.events:
            abstract = event.abstract
            if abstract.is_read:
                reads.add(abstract)
            if abstract.is_write:
                writes.add(abstract)
        return reads, writes

    def rf_equivalent(self, other: "Trace") -> bool:
        """True when ``self ≡rf other`` (same events and reads-from pairs).

        Event identity is compared at the abstract level with multiplicity:
        two runs of the same program that execute the same multiset of
        abstract events with the same abstract reads-from function expose
        identical thread-local control and data flow (Section 3).
        """
        if sorted(str(e.abstract) for e in self.events) != sorted(str(e.abstract) for e in other.events):
            return False
        return self.rf_signature() == other.rf_signature()

    def format(self, limit: int | None = None) -> str:
        """Pretty-print the trace, mainly for examples and failure triage."""
        lines = [str(e) for e in self.events[: limit or len(self.events)]]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        if self.outcome:
            lines.append(f"outcome: {self.outcome} ({self.failure})")
        return "\n".join(lines)
