"""Concrete traces and the reads-from relation (paper Section 3).

A :class:`Trace` is the recorded sequence of events of one execution.  Its
reads-from function maps each read event to the write event it observed; two
traces are reads-from equivalent (``≡rf``) when they contain the same events
and the same reads-from function.  The hashable :meth:`Trace.rf_signature`
canonically summarises the equivalence class and drives both the fuzzer's
novelty feedback (Section 3, "Reads-from feedback") and the RQ3 frequency
histograms (Figure 5).

Abstract rf pairs are *interned* alongside abstract events: every distinct
``(writer, reader)`` pair (with both sides already-interned abstract events)
receives a small integer id from a process-global table.  The executor
collects these ids incrementally while recording events, so for
executor-produced traces :meth:`Trace.rf_pairs` / :meth:`Trace.rf_signature`
are O(1) memoized lookups; only sliced/minimized traces fall back to the
full re-scan.  The memo is invalidated when the event count changes, the
same discipline as the lazily built eid index.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.events import AbstractEvent, Event

#: An abstract reads-from pair: (writer abstract event, reader abstract event).
#: The writer side is ``None`` when the read observed the location's initial
#: value (the paper's initial pseudo-write at "line 1").
RfPair = tuple[AbstractEvent | None, AbstractEvent]

#: Intern table for abstract rf pairs.  Keyed on the *identities* of the
#: interned abstract events (0 for the initial pseudo-write), which is sound
#: because the abstract-event intern table keeps its singletons alive for
#: the process lifetime.  Values are small dense ints usable in set
#: arithmetic without hashing tuples.
_PAIR_IDS: dict[tuple[int, int], int] = {}
#: pair id -> the interned RfPair tuple.
_PAIRS: list[RfPair] = []
#: pair id -> a process-stable 64-bit mix of the pair, XOR-combined into the
#: order-insensitive incremental signature hash (:meth:`Trace.rf_sig_hash`).
_PAIR_HASHES: list[int] = []

_HASH_MASK = (1 << 64) - 1


def intern_rf_pair(writer: AbstractEvent | None, reader: AbstractEvent) -> int:
    """The dense int id of the abstract rf pair ``(writer, reader)``.

    Both sides must be interned abstract events (``Event.abstract`` /
    :func:`repro.core.events.intern_abstract` always return those).
    """
    key = (0 if writer is None else id(writer), id(reader))
    pid = _PAIR_IDS.get(key)
    if pid is None:
        pid = len(_PAIRS)
        _PAIR_IDS[key] = pid
        _PAIRS.append((writer, reader))
        # hash() of the tuple is stable for the process, which is the scope
        # of the pair-id table itself.
        _PAIR_HASHES.append(hash((writer, reader)) & _HASH_MASK)
    return pid


def rf_pair_for_id(pid: int) -> RfPair:
    """The interned ``(writer, reader)`` tuple behind a pair id."""
    return _PAIRS[pid]


def rf_pair_hash(pid: int) -> int:
    """The 64-bit mix XOR-combined into incremental signature hashes."""
    return _PAIR_HASHES[pid]


#: Intern table for small immutable schedule tuples (dispatch slices, rf-id
#: tuples): equal tuples collapse to one process-global singleton.  Like the
#: pair tables above it lives for the process lifetime; its population is
#: bounded by the number of distinct slices/schedules a campaign dispatches.
_SCHEDULE_TABLE: dict[tuple, tuple] = {}


def intern_schedule(items: tuple) -> tuple:
    """The canonical singleton of a hashable schedule tuple.

    The batched worker pool routes every dispatch slice through this table,
    so a retried or re-batched slice reuses the exact tuple object of its
    first dispatch (pickle memoization then ships the repeated strings
    once), and parent-side bookkeeping compares by identity.
    """
    cached = _SCHEDULE_TABLE.get(items)
    if cached is None:
        cached = _SCHEDULE_TABLE[items] = items
    return cached


@dataclass
class Trace:
    """An ordered event sequence plus the outcome of the execution."""

    events: list[Event] = field(default_factory=list)
    #: Bug kind string (e.g. "assertion", "deadlock", "use-after-free") or
    #: None when the execution completed normally.
    outcome: str | None = None
    #: Human-readable description of the failure, when any.
    failure: str | None = None
    #: Lazily built eid -> event index (rebuilt when the event count changes;
    #: excluded from equality/repr so Trace value semantics are unchanged).
    _eid_index: dict[int, Event] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _eid_index_size: int = field(default=-1, init=False, repr=False, compare=False)
    #: Memoized rf state (same invalidation discipline as the eid index):
    #: the interned pair-id set, the pair frozenset doubling as the
    #: signature, and the order-insensitive XOR signature hash.
    _rf_ids: frozenset[int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _rf_pairs: frozenset[RfPair] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _rf_hash: int = field(default=0, init=False, repr=False, compare=False)
    _rf_size: int = field(default=-1, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def crashed(self) -> bool:
        return self.outcome is not None

    def _events_by_id(self) -> dict[int, Event]:
        if self._eid_index is None or self._eid_index_size != len(self.events):
            self._eid_index = {event.eid: event for event in self.events}
            self._eid_index_size = len(self.events)
        return self._eid_index

    def event_by_id(self, eid: int) -> Event:
        # Fast path: executor-recorded traces assign ids densely from 1 in
        # execution order, so the event usually sits at index eid - 1.
        if 1 <= eid <= len(self.events):
            event = self.events[eid - 1]
            if event.eid == eid:
                return event
        # Sliced/minimized traces (e.g. ddmin output) keep original ids on an
        # arbitrary event subsequence; fall back to the eid index.
        event = self._events_by_id().get(eid)
        if event is None:
            raise KeyError(eid)
        return event

    def reads_from(self) -> dict[int, int]:
        """Map each read event id to the event id of its writer (0 = initial)."""
        return {e.eid: e.rf for e in self.events if e.rf is not None}

    # -- reads-from memoization ------------------------------------------
    def seed_rf_cache(self, pair_ids: set[int] | frozenset[int], sig_hash: int) -> None:
        """Install the rf state collected incrementally during execution.

        Called by the executor after the run: ``pair_ids`` are interned pair
        ids for exactly the rf edges a full re-scan of the recorded events
        would find (every writer of a recorded read is itself recorded), and
        ``sig_hash`` is their XOR-combined incremental hash.
        """
        ids = frozenset(pair_ids)
        self._rf_ids = ids
        self._rf_pairs = frozenset([_PAIRS[pid] for pid in ids])
        self._rf_hash = sig_hash
        self._rf_size = len(self.events)

    def _rf_compute(self) -> None:
        """Fallback full scan (sliced/minimized or hand-built traces)."""
        by_id = self._events_by_id()
        ids: set[int] = set()
        for event in self.events:
            rf = event.rf
            if rf is None:
                continue
            if rf == 0:
                writer = None
            else:
                writer_event = by_id.get(rf)
                if writer_event is None:
                    # Pairs whose writer was dropped from the subsequence are
                    # omitted — the edge is no longer witnessed by the trace.
                    continue
                writer = writer_event.abstract
            ids.add(intern_rf_pair(writer, event.abstract))
        sig_hash = 0
        for pid in ids:
            sig_hash ^= _PAIR_HASHES[pid]
        self._rf_ids = frozenset(ids)
        self._rf_pairs = frozenset([_PAIRS[pid] for pid in ids])
        self._rf_hash = sig_hash
        self._rf_size = len(self.events)

    def rf_pair_ids(self) -> frozenset[int]:
        """The interned pair ids of :meth:`rf_pairs` (the fast novelty set)."""
        if self._rf_ids is None or self._rf_size != len(self.events):
            self._rf_compute()
        return self._rf_ids

    def rf_pairs(self) -> frozenset[RfPair]:
        """The set of *abstract* reads-from pairs exercised by this trace.

        On an event subsequence (sliced or minimized traces), pairs whose
        writer event was dropped from the subsequence are omitted — the
        reads-from edge is no longer witnessed by the trace itself.
        """
        if self._rf_pairs is None or self._rf_size != len(self.events):
            self._rf_compute()
        return self._rf_pairs

    def rf_signature(self) -> frozenset[RfPair]:
        """Canonical hashable summary of the ``≡rf`` class of this trace."""
        return self.rf_pairs()

    def rf_sig_hash(self) -> int:
        """Order-insensitive 64-bit hash of the rf signature.

        XOR of the interned per-pair mixes, maintained incrementally by the
        executor as reads land; a cheap process-local fingerprint for
        signature comparisons without building or hashing frozensets.
        """
        if self._rf_ids is None or self._rf_size != len(self.events):
            self._rf_compute()
        return self._rf_hash

    def abstract_events(self) -> set[AbstractEvent]:
        """All abstract events observed, the pool mutations draw from."""
        return {e.abstract for e in self.events}

    def memory_abstract_events(self) -> tuple[set[AbstractEvent], set[AbstractEvent]]:
        """Observed abstract (reads, writes) usable in reads-from constraints."""
        reads: set[AbstractEvent] = set()
        writes: set[AbstractEvent] = set()
        for event in self.events:
            abstract = event.abstract
            if abstract.is_read:
                reads.add(abstract)
            if abstract.is_write:
                writes.add(abstract)
        return reads, writes

    def rf_equivalent(self, other: "Trace") -> bool:
        """True when ``self ≡rf other`` (same events and reads-from pairs).

        Event identity is compared at the abstract level with multiplicity:
        two runs of the same program that execute the same multiset of
        abstract events with the same abstract reads-from function expose
        identical thread-local control and data flow (Section 3).
        """
        if Counter(e.abstract for e in self.events) != Counter(e.abstract for e in other.events):
            return False
        return self.rf_signature() == other.rf_signature()

    def format(self, limit: int | None = None) -> str:
        """Pretty-print the trace, mainly for examples and failure triage."""
        lines = [str(e) for e in self.events[: limit or len(self.events)]]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        if self.outcome:
            lines.append(f"outcome: {self.outcome} ({self.failure})")
        return "\n".join(lines)
