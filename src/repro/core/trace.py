"""Concrete traces and the reads-from relation (paper Section 3).

A :class:`Trace` is the recorded sequence of events of one execution.  Its
reads-from function maps each read event to the write event it observed; two
traces are reads-from equivalent (``≡rf``) when they contain the same events
and the same reads-from function.  The hashable :meth:`Trace.rf_signature`
canonically summarises the equivalence class and drives both the fuzzer's
novelty feedback (Section 3, "Reads-from feedback") and the RQ3 frequency
histograms (Figure 5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.events import AbstractEvent, Event

#: An abstract reads-from pair: (writer abstract event, reader abstract event).
#: The writer side is ``None`` when the read observed the location's initial
#: value (the paper's initial pseudo-write at "line 1").
RfPair = tuple[AbstractEvent | None, AbstractEvent]


@dataclass
class Trace:
    """An ordered event sequence plus the outcome of the execution."""

    events: list[Event] = field(default_factory=list)
    #: Bug kind string (e.g. "assertion", "deadlock", "use-after-free") or
    #: None when the execution completed normally.
    outcome: str | None = None
    #: Human-readable description of the failure, when any.
    failure: str | None = None
    #: Lazily built eid -> event index (rebuilt when the event count changes;
    #: excluded from equality/repr so Trace value semantics are unchanged).
    _eid_index: dict[int, Event] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _eid_index_size: int = field(default=-1, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def crashed(self) -> bool:
        return self.outcome is not None

    def _events_by_id(self) -> dict[int, Event]:
        if self._eid_index is None or self._eid_index_size != len(self.events):
            self._eid_index = {event.eid: event for event in self.events}
            self._eid_index_size = len(self.events)
        return self._eid_index

    def event_by_id(self, eid: int) -> Event:
        # Fast path: executor-recorded traces assign ids densely from 1 in
        # execution order, so the event usually sits at index eid - 1.
        if 1 <= eid <= len(self.events):
            event = self.events[eid - 1]
            if event.eid == eid:
                return event
        # Sliced/minimized traces (e.g. ddmin output) keep original ids on an
        # arbitrary event subsequence; fall back to the eid index.
        event = self._events_by_id().get(eid)
        if event is None:
            raise KeyError(eid)
        return event

    def reads_from(self) -> dict[int, int]:
        """Map each read event id to the event id of its writer (0 = initial)."""
        return {e.eid: e.rf for e in self.events if e.rf is not None}

    def rf_pairs(self) -> set[RfPair]:
        """The set of *abstract* reads-from pairs exercised by this trace.

        On an event subsequence (sliced or minimized traces), pairs whose
        writer event was dropped from the subsequence are omitted — the
        reads-from edge is no longer witnessed by the trace itself.
        """
        by_id = self._events_by_id()
        pairs: set[RfPair] = set()
        for event in self.events:
            if event.rf is None:
                continue
            if event.rf == 0:
                writer = None
            else:
                writer_event = by_id.get(event.rf)
                if writer_event is None:
                    continue
                writer = writer_event.abstract
            pairs.add((writer, event.abstract))
        return pairs

    def rf_signature(self) -> frozenset[RfPair]:
        """Canonical hashable summary of the ``≡rf`` class of this trace."""
        return frozenset(self.rf_pairs())

    def abstract_events(self) -> set[AbstractEvent]:
        """All abstract events observed, the pool mutations draw from."""
        return {e.abstract for e in self.events}

    def memory_abstract_events(self) -> tuple[set[AbstractEvent], set[AbstractEvent]]:
        """Observed abstract (reads, writes) usable in reads-from constraints."""
        reads: set[AbstractEvent] = set()
        writes: set[AbstractEvent] = set()
        for event in self.events:
            abstract = event.abstract
            if abstract.is_read:
                reads.add(abstract)
            if abstract.is_write:
                writes.add(abstract)
        return reads, writes

    def rf_equivalent(self, other: "Trace") -> bool:
        """True when ``self ≡rf other`` (same events and reads-from pairs).

        Event identity is compared at the abstract level with multiplicity:
        two runs of the same program that execute the same multiset of
        abstract events with the same abstract reads-from function expose
        identical thread-local control and data flow (Section 3).
        """
        if Counter(e.abstract for e in self.events) != Counter(e.abstract for e in other.events):
            return False
        return self.rf_signature() == other.rf_signature()

    def format(self, limit: int | None = None) -> str:
        """Pretty-print the trace, mainly for examples and failure triage."""
        lines = [str(e) for e in self.events[: limit or len(self.events)]]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        if self.outcome:
            lines.append(f"outcome: {self.outcome} ({self.failure})")
        return "\n".join(lines)
