"""The corpus of interesting abstract schedules (Algorithm 1's working set)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import AbstractSchedule
from repro.core.trace import RfPair


@dataclass
class CorpusEntry:
    """One interesting abstract schedule plus its power-schedule bookkeeping.

    * ``signature`` — the rf combination the schedule exercised when it was
      admitted (the f(α) lookup key).
    * ``new_pairs`` — how many new rf pairs its admission contributed; the
      basis of the performance score γ(α).
    * ``chosen_since_skip`` — s(α): times picked since it was last skipped.
    """

    schedule: AbstractSchedule
    signature: frozenset[RfPair] = frozenset()
    new_pairs: int = 1
    satisfied_fraction: float = 1.0
    chosen_since_skip: int = 0
    times_chosen: int = 0
    times_skipped: int = 0
    crashes: int = 0

    @property
    def gamma(self) -> float:
        """γ(α): performance score — novelty contribution weighted by how
        well the proactive scheduler could realise the schedule."""
        return max(1.0, float(self.new_pairs)) * max(0.25, self.satisfied_fraction)


@dataclass
class Corpus:
    """Round-robin working set of corpus entries (the set S of Algorithm 1)."""

    entries: list[CorpusEntry] = field(default_factory=list)
    _cursor: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def add(self, entry: CorpusEntry) -> None:
        self.entries.append(entry)

    def next_entry(self) -> CorpusEntry:
        """The next schedule in round-robin order (PickNext of Algorithm 1)."""
        if not self.entries:
            raise LookupError("corpus is empty; seed it with the ε schedule")
        entry = self.entries[self._cursor % len(self.entries)]
        self._cursor += 1
        return entry

    def schedules(self) -> list[AbstractSchedule]:
        return [entry.schedule for entry in self.entries]
