"""RFF: the greybox schedule fuzzer (paper Algorithm 1 + Section 4.2).

The fuzzing loop, faithful to Algorithm 1::

    S <- {ε}; S_fail <- {}
    repeat
        (σ, η_σ) <- PickNextAndAssignEnergy(S)      # round-robin + power schedule
        for i in 1..η_σ:
            σ_mut <- mutateSchedule(σ, S)           # insert/swap/delete/negate
            execute PUT under the proactive reads-from scheduler for σ_mut
            if crash:        S_fail <- S_fail ∪ {σ_mut}
            if interesting:  S <- S ∪ {σ_mut}       # new abstract rf pair
    until budget exhausted

Every design knob the paper ablates is a field of :class:`RffConfig`, so the
RQ2/RQ3 experiments and the extra ablation benches run the same engine with
components disabled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.corpus import Corpus, CorpusEntry
from repro.core.feedback import RfFeedback
from repro.core.mutation import EventPool, ScheduleMutator
from repro.core.power import FlatSchedule, PowerSchedule
from repro.core.proactive import RffSchedulerPolicy
from repro.core.reproduce import dedup_key, failure_frames
from repro.core.trace import RfPair
from repro.runtime.executor import DEFAULT_MAX_STEPS, ExecutionResult, Executor
from repro.runtime.guard import GuardConfig
from repro.runtime.program import Program
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.pos import PosPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.online import Sanitizer, SanitizerReport


@dataclass(frozen=True)
class RffConfig:
    """Tunable components of the fuzzer; defaults reproduce full RFF."""

    #: Admit novel schedules into the corpus (isInteresting feedback).
    #: Disabled for the "no greybox feedback" arm of RQ3.
    use_feedback: bool = True
    #: Use the cut-off exponential power schedule; otherwise 1 mutation/pick.
    use_power_schedule: bool = True
    #: Drive executions with the proactive constraint scheduler; otherwise
    #: run plain POS (the RQ2 "no abstract schedule" ablation).
    use_constraints: bool = True
    #: Upper bound on constraints per abstract schedule.
    max_constraints: int = 8
    #: Probability a freshly drawn constraint is positive.
    positive_bias: float = 0.7
    #: Power schedule hyperparameters (Section 4.2).
    beta: float = 2.0
    max_energy: int = 64
    #: Per-execution step bound (None = program / executor default).
    max_steps: int | None = None
    #: Memory model the executions run under: "sc" (paper default) or
    #: "tso" (the weak-memory extension; see repro.runtime.tso).
    memory_model: str = "sc"
    #: Probability of a two-parent splice instead of a single-op mutation
    #: ("one (or more)" corpus members per Section 4; AFL's splice stage).
    splice_probability: float = 0.1
    #: Online sanitizer stack attached to every execution (names from
    #: ``repro.analysis.online.SANITIZERS``, e.g. ``("race", "lockset")``).
    #: Sanitizer findings count as bugs and feed isInteresting like crashes.
    sanitizers: tuple[str, ...] = ()
    #: Runtime guardrails attached to every execution (step budget, wall
    #: clock, livelock detector); None = unguarded.  Watchdog kills surface
    #: as ``timeout``/``livelock`` crashes and are triaged like any bug.
    guard: GuardConfig | None = None


@dataclass(frozen=True)
class CrashRecord:
    """One crashing schedule (an element of S_fail)."""

    execution_index: int
    outcome: str
    failure: str
    abstract_schedule: AbstractSchedule
    concrete_schedule: tuple[int, ...]
    #: Triage bucket signature (kind, frame hash, rf hash); see
    #: :func:`repro.core.reproduce.dedup_key`.  None on records loaded from
    #: files written before triage existed.
    dedup_key: tuple[str, str, str] | None = None
    #: Program frames (``function:line``) where the failure manifested.
    frames: tuple[str, ...] = ()


@dataclass(frozen=True)
class SanitizerRecord:
    """One novel sanitizer finding and the schedule that exposed it."""

    execution_index: int
    report: "SanitizerReport"
    abstract_schedule: AbstractSchedule
    concrete_schedule: tuple[int, ...]


@dataclass
class FuzzReport:
    """Everything a campaign needs to know about one fuzzing run."""

    program_name: str
    executions: int = 0
    crashes: list[CrashRecord] = field(default_factory=list)
    #: Novel sanitizer findings (deduplicated by abstract-event pair).
    sanitizer_records: list[SanitizerRecord] = field(default_factory=list)
    corpus_size: int = 0
    pair_coverage: int = 0
    unique_signatures: int = 0
    truncated_runs: int = 0
    #: rf-signature -> observation count (the Figure 5 histogram data).
    signature_counts: dict[frozenset[RfPair], int] = field(default_factory=dict)

    @property
    def found_bug(self) -> bool:
        return bool(self.crashes) or bool(self.sanitizer_records)

    @property
    def first_crash_at(self) -> int | None:
        """Schedules-to-first-crash (1-based)."""
        return self.crashes[0].execution_index if self.crashes else None

    @property
    def first_bug_at(self) -> int | None:
        """Schedules-to-first-bug — crash or sanitizer finding (1-based)."""
        firsts = [r.execution_index for r in (self.crashes[:1] + self.sanitizer_records[:1])]
        return min(firsts) if firsts else None


class RffFuzzer:
    """Greybox concurrency fuzzer over the abstract schedule space."""

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        config: RffConfig | None = None,
        seeds: list[AbstractSchedule] | None = None,
    ):
        self.program = program
        self.config = config or RffConfig()
        self.rng = random.Random(seed)
        self.feedback = RfFeedback()
        self.pool = EventPool()
        self.mutator = ScheduleMutator(
            self.rng,
            max_constraints=self.config.max_constraints,
            positive_bias=self.config.positive_bias,
        )
        if self.config.use_power_schedule:
            self.power = PowerSchedule(beta=self.config.beta, max_energy=self.config.max_energy)
        else:
            self.power = FlatSchedule()
        self.corpus = Corpus()
        initial = seeds if seeds else [AbstractSchedule.empty()]
        for schedule in initial:
            self.corpus.add(CorpusEntry(schedule=schedule))
        self.report = FuzzReport(program_name=program.name)
        #: dedup keys of every sanitizer finding recorded so far.
        self._sanitizer_keys: set[tuple] = set()
        #: rf signature of the most recent execution (stage cut-off input).
        self._last_signature: frozenset | None = None
        # Lazy import: repro.harness imports this module at package init.
        from repro.harness.telemetry import GLOBAL_COUNTERS

        self._counters = GLOBAL_COUNTERS

    # ------------------------------------------------------------------
    def _max_steps(self) -> int:
        if self.config.max_steps is not None:
            return self.config.max_steps
        if self.program.max_steps is not None:
            return self.program.max_steps
        return DEFAULT_MAX_STEPS

    def _make_policy(self, schedule: AbstractSchedule) -> SchedulerPolicy:
        seed = self.rng.randrange(2**63)
        if self.config.use_constraints:
            return RffSchedulerPolicy(schedule, seed=seed)
        return PosPolicy(seed=seed)

    def _executor_class(self) -> type[Executor]:
        if self.config.memory_model == "sc":
            return Executor
        if self.config.memory_model == "tso":
            from repro.runtime.tso import TsoExecutor

            return TsoExecutor
        raise ValueError(f"unknown memory model {self.config.memory_model!r}")

    def _sanitizer_stack(self) -> list["Sanitizer"]:
        if not self.config.sanitizers:
            return []
        # Lazy import: keeps the fuzzer import chain free of the analysis
        # package (and its networkx dependency) when sanitizers are off.
        from repro.analysis.online import build_stack

        return build_stack(self.config.sanitizers)

    def _execute(self, schedule: AbstractSchedule) -> tuple[ExecutionResult, SchedulerPolicy]:
        policy = self._make_policy(schedule)
        executor_class = self._executor_class()
        result = executor_class(
            self.program,
            policy,
            max_steps=self._max_steps(),
            sanitizers=self._sanitizer_stack(),
            guard=self.config.guard,
        ).run()
        return result, policy

    # ------------------------------------------------------------------
    def run(self, max_executions: int, stop_on_first_crash: bool = False) -> FuzzReport:
        """Run the fuzzing loop for at most ``max_executions`` schedules."""
        while self.report.executions < max_executions:
            entry = self.corpus.next_entry()
            energy = self.power.energy(entry, self.corpus, self.feedback)
            if energy == 0:
                entry.times_skipped += 1
                entry.chosen_since_skip = 0
                continue
            entry.times_chosen += 1
            entry.chosen_since_skip += 1
            for _ in range(energy):
                if self.report.executions >= max_executions:
                    break
                mutant = self._next_mutant(entry)
                done = self._run_one(mutant, parent=entry)
                if done and stop_on_first_crash:
                    return self._finalize()
                if self._stage_over_explored():
                    # Cut-off (Section 4.2): the stage has drifted into an
                    # over-explored reads-from combination — stop spending
                    # energy here and move to the next corpus entry.
                    break
        return self._finalize()

    def _next_mutant(self, entry: CorpusEntry) -> AbstractSchedule:
        if (
            len(self.corpus) > 1
            and self.rng.random() < self.config.splice_probability
        ):
            other = self.corpus.entries[self.rng.randrange(len(self.corpus))]
            if other is not entry:
                return self.mutator.splice(entry.schedule, other.schedule)
        return self.mutator.mutate(entry.schedule, self.pool)

    def _stage_over_explored(self) -> bool:
        """Whether the most recent execution hit an over-explored rf class."""
        if not self.config.use_power_schedule or not isinstance(self.power, PowerSchedule):
            return False
        mu = self.power.mean_frequency(self.corpus, self.feedback)
        return self._last_signature is not None and self.feedback.frequency(self._last_signature) > mu

    def _run_one(self, mutant: AbstractSchedule, parent: CorpusEntry) -> bool:
        """Execute one mutant schedule; returns True when it found a bug
        (a crash or a novel sanitizer finding)."""
        result, policy = self._execute(mutant)
        self.report.executions += 1
        if result.truncated:
            self.report.truncated_runs += 1
        observation = self.feedback.observe(result.trace)
        self._last_signature = observation.signature
        self.pool.observe(result.trace)
        crashed = result.crashed
        if crashed:
            self._counters.crashes += 1
            parent.crashes += 1
            self.report.crashes.append(
                CrashRecord(
                    execution_index=self.report.executions,
                    outcome=result.outcome or "crash",
                    failure=result.trace.failure or "",
                    abstract_schedule=mutant,
                    concrete_schedule=tuple(result.schedule),
                    dedup_key=dedup_key(result),
                    frames=failure_frames(result),
                )
            )
        new_reports = [
            report
            for report in result.sanitizer_reports
            if report.dedup_key not in self._sanitizer_keys
        ]
        for report in new_reports:
            self._sanitizer_keys.add(report.dedup_key)
            self.report.sanitizer_records.append(
                SanitizerRecord(
                    execution_index=self.report.executions,
                    report=report,
                    abstract_schedule=mutant,
                    concrete_schedule=tuple(result.schedule),
                )
            )
        admit = crashed or bool(new_reports) or observation.interesting
        if admit and self.config.use_feedback:
            self._counters.corpus_adds += 1
            satisfied, total = self._satisfaction(policy)
            self.corpus.add(
                CorpusEntry(
                    schedule=self._pin_novelty(mutant, observation.new_pairs),
                    signature=observation.signature,
                    new_pairs=len(observation.new_pairs) or 1,
                    satisfied_fraction=(satisfied / total) if total else 1.0,
                )
            )
        return crashed or bool(new_reports)

    def _pin_novelty(self, mutant: AbstractSchedule, new_pairs) -> AbstractSchedule:
        """Stitch the execution's novel rf pairs into the stored schedule.

        Admitting the raw mutant would often lose what made the execution
        novel (the new pairs may have come from scheduling noise, not the
        constraints).  Reifying them as positive constraints keeps future
        mutations of this entry anchored in the rare reads-from
        neighborhood — the paper's "extracting a list of events observed in
        previous schedules and stitching them" (Section 2).
        """
        schedule = mutant
        room = self.config.max_constraints - len(schedule)
        for writer, reader in sorted(new_pairs, key=str)[: max(0, room)]:
            try:
                schedule = schedule.insert(Constraint(reader, writer))
            except ValueError:
                continue  # pair not expressible as a constraint (kind mix)
        return schedule

    @staticmethod
    def _satisfaction(policy: SchedulerPolicy) -> tuple[int, int]:
        if isinstance(policy, RffSchedulerPolicy):
            return policy.satisfaction()
        return (0, 0)

    def _finalize(self) -> FuzzReport:
        self.report.corpus_size = len(self.corpus)
        self.report.pair_coverage = self.feedback.pair_coverage
        self.report.unique_signatures = self.feedback.unique_signatures
        self.report.signature_counts = dict(self.feedback.signature_counts)
        return self.report


def fuzz(
    program: Program,
    max_executions: int = 1000,
    seed: int = 0,
    config: RffConfig | None = None,
    stop_on_first_crash: bool = False,
) -> FuzzReport:
    """One-call convenience API: fuzz ``program`` and return the report."""
    fuzzer = RffFuzzer(program, seed=seed, config=config)
    return fuzzer.run(max_executions, stop_on_first_crash=stop_on_first_crash)
