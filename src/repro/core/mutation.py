"""Schedule mutation: the randomness engine of the fuzzing loop.

Paper Section 3, "Mutating abstract schedules": ``mutateSchedule`` first
picks one of four operators — insert, swap, delete, negate — then draws the
constraints those operators need from ``E``, the pool of *potentially
conflicting* abstract events observed in previous executions (reads and
writes on the same memory location).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.events import AbstractEvent
from repro.core.trace import Trace

MUTATION_OPERATORS = ("insert", "swap", "delete", "negate")


@dataclass
class EventPool:
    """Accumulates abstract read/write events per location across executions.

    This is the set ``E`` of all events observed so far, organised so that a
    random constraint can be drawn in O(1): pick a location that has at least
    one read, pick a read, pick a write (or the initial pseudo-write).
    """

    reads: dict[str, list[AbstractEvent]] = field(default_factory=dict)
    writes: dict[str, list[AbstractEvent]] = field(default_factory=dict)
    _seen: set[AbstractEvent] = field(default_factory=set)

    def observe(self, trace: Trace) -> int:
        """Add every memory abstract event of ``trace``; returns #new events."""
        added = 0
        for event in trace.events:
            abstract = event.abstract
            if abstract in self._seen:
                continue
            self._seen.add(abstract)
            added += 1
            if abstract.is_read:
                self.reads.setdefault(abstract.location, []).append(abstract)
            if abstract.is_write:
                self.writes.setdefault(abstract.location, []).append(abstract)
        return added

    @property
    def constrainable_locations(self) -> list[str]:
        """Locations with at least one observed read (sorted for determinism)."""
        return sorted(self.reads)

    def __len__(self) -> int:
        return len(self._seen)

    def random_constraint(self, rng: random.Random, positive_bias: float = 0.7) -> Constraint | None:
        """Draw a random constraint over potentially conflicting events.

        The write side includes the initial pseudo-write (None) as one extra
        choice, matching the paper's counting for Figure 1 (each read has the
        initial write among its reads-from options).  Returns None when no
        reads have been observed yet (first execution).
        """
        locations = self.constrainable_locations
        if not locations:
            return None
        location = locations[rng.randrange(len(locations))]
        read = rng.choice(self.reads[location])
        write_options: list[AbstractEvent | None] = [None, *self.writes.get(location, ())]
        write = rng.choice(write_options)
        positive = rng.random() < positive_bias
        return Constraint(read, write, positive)


class ScheduleMutator:
    """Applies one random structural mutation per call (paper Section 3)."""

    def __init__(
        self,
        rng: random.Random,
        max_constraints: int = 8,
        positive_bias: float = 0.7,
    ):
        if max_constraints < 1:
            raise ValueError("max_constraints must be at least 1")
        self.rng = rng
        self.max_constraints = max_constraints
        self.positive_bias = positive_bias
        #: Counts per chosen operator, exposed for diagnostics/tests.
        self.operator_counts: dict[str, int] = {op: 0 for op in MUTATION_OPERATORS}

    def mutate(self, alpha: AbstractSchedule, pool: EventPool) -> AbstractSchedule:
        """Produce a mutant of ``alpha``; may equal α when the pool is empty."""
        op = self.rng.choice(MUTATION_OPERATORS)
        # Degenerate cases: delete/swap/negate need an existing constraint,
        # insert needs room; fall back to the applicable operator.
        if not alpha.constraints and op in ("swap", "delete", "negate"):
            op = "insert"
        if op == "insert" and len(alpha) >= self.max_constraints:
            op = "swap" if alpha.constraints else "delete"
        mutant = self._apply(op, alpha, pool)
        self.operator_counts[op] += 1
        return mutant

    def _apply(self, op: str, alpha: AbstractSchedule, pool: EventPool) -> AbstractSchedule:
        if op == "insert":
            constraint = pool.random_constraint(self.rng, self.positive_bias)
            return alpha if constraint is None else alpha.insert(constraint)
        existing = self._pick(alpha)
        if op == "delete":
            return alpha.delete(existing)
        if op == "negate":
            return alpha.negate(existing)
        constraint = pool.random_constraint(self.rng, self.positive_bias)
        if constraint is None:
            return alpha.delete(existing)
        return alpha.swap(existing, constraint)

    def _pick(self, alpha: AbstractSchedule) -> Constraint:
        ordered = sorted(alpha.constraints, key=str)
        return ordered[self.rng.randrange(len(ordered))]

    def splice(self, alpha: AbstractSchedule, other: AbstractSchedule) -> AbstractSchedule:
        """Two-parent crossover: a random subset of each parent's constraints.

        The paper's mutation step draws "one (or more)" members of the
        corpus (Section 4); splicing is the more-than-one case, directly
        analogous to AFL's splice stage.  The child never exceeds the
        constraint cap.
        """
        pool = sorted(alpha.constraints | other.constraints, key=str)
        if not pool:
            return AbstractSchedule.empty()
        kept = [c for c in pool if self.rng.random() < 0.5]
        if not kept:
            kept = [pool[self.rng.randrange(len(pool))]]
        if len(kept) > self.max_constraints:
            kept = self.rng.sample(kept, self.max_constraints)
        return AbstractSchedule(frozenset(kept))
