"""RFF core: events, reads-from traces, abstract schedules and the fuzzer.

The scheduler- and fuzzer-facing names (``RffFuzzer``, ``fuzz``,
``RffSchedulerPolicy``, the constraint trackers) are loaded lazily: they
depend on :mod:`repro.runtime`, which itself imports the leaf data modules
of this package (events, traces), so eager imports would be circular.
"""

from repro.core.constraints import AbstractSchedule, Constraint
from repro.core.corpus import Corpus, CorpusEntry
from repro.core.events import AbstractEvent, Event
from repro.core.feedback import Observation, RfFeedback
from repro.core.mutation import MUTATION_OPERATORS, EventPool, ScheduleMutator
from repro.core.power import FlatSchedule, PowerSchedule
from repro.core.trace import RfPair, Trace

#: Lazily imported name -> defining submodule (PEP 562).
_LAZY = {
    "Bias": "repro.core.proactive",
    "ConstraintTracker": "repro.core.proactive",
    "NegativeTracker": "repro.core.proactive",
    "PositiveTracker": "repro.core.proactive",
    "RffSchedulerPolicy": "repro.core.proactive",
    "TrackerState": "repro.core.proactive",
    "CrashRecord": "repro.core.fuzzer",
    "SanitizerRecord": "repro.core.fuzzer",
    "FuzzReport": "repro.core.fuzzer",
    "RffConfig": "repro.core.fuzzer",
    "RffFuzzer": "repro.core.fuzzer",
    "fuzz": "repro.core.fuzzer",
    "MinimizationResult": "repro.core.minimize",
    "crash_rate": "repro.core.minimize",
    "minimize_schedule": "repro.core.minimize",
}

__all__ = [
    "AbstractEvent",
    "AbstractSchedule",
    "Constraint",
    "Corpus",
    "CorpusEntry",
    "Event",
    "EventPool",
    "FlatSchedule",
    "MUTATION_OPERATORS",
    "Observation",
    "PowerSchedule",
    "RfFeedback",
    "RfPair",
    "ScheduleMutator",
    "Trace",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
