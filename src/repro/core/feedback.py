"""Greybox feedback: reads-from novelty (paper Section 3).

``isInteresting(σmut, S)`` returns true when (a) the execution exercised an
abstract reads-from pair never seen in any schedule of the corpus, or
(b) the schedule crashed — mirroring input-level greybox fuzzers, which keep
crashing inputs regardless of coverage.  The tracker also counts how often
each full rf *signature* (the ≡rf class) has been observed, which feeds both
the power schedule's frequency term f(α) and the RQ3 histogram (Figure 5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.trace import RfPair, Trace


@dataclass
class Observation:
    """What the feedback tracker learned from one execution."""

    new_pairs: frozenset[RfPair]
    signature: frozenset[RfPair]
    crashed: bool
    #: True when this execution's rf *combination* (the full signature) was
    #: never observed before, even if every individual pair was.
    new_signature: bool = False

    @property
    def interesting(self) -> bool:
        """isInteresting (Section 3): a never-seen abstract rf pair, a
        never-seen rf combination, or a crash.  Combination-level novelty is
        what populates the corpus with one representative per rf class, the
        precondition for the Section 4.2 power schedule to steer energy
        toward rarely observed combinations (Figure 5)."""
        return bool(self.new_pairs) or self.new_signature or self.crashed


@dataclass
class RfFeedback:
    """Cross-execution reads-from coverage state."""

    seen_pairs: set[RfPair] = field(default_factory=set)
    signature_counts: Counter = field(default_factory=Counter)
    executions: int = 0

    def observe(self, trace: Trace) -> Observation:
        """Record one trace; returns the novelty summary."""
        pairs = trace.rf_pairs()
        new = frozenset(p for p in pairs if p not in self.seen_pairs)
        self.seen_pairs.update(new)
        signature = frozenset(pairs)
        first_time = self.signature_counts[signature] == 0
        self.signature_counts[signature] += 1
        self.executions += 1
        return Observation(
            new_pairs=new, signature=signature, crashed=trace.crashed, new_signature=first_time
        )

    def frequency(self, signature: frozenset[RfPair]) -> int:
        """f(α): how often this rf combination has been observed."""
        return self.signature_counts[signature]

    @property
    def unique_signatures(self) -> int:
        return len(self.signature_counts)

    @property
    def pair_coverage(self) -> int:
        """Total distinct abstract rf pairs ever observed (the coverage map)."""
        return len(self.seen_pairs)
