"""Greybox feedback: reads-from novelty (paper Section 3).

``isInteresting(σmut, S)`` returns true when (a) the execution exercised an
abstract reads-from pair never seen in any schedule of the corpus, or
(b) the schedule crashed — mirroring input-level greybox fuzzers, which keep
crashing inputs regardless of coverage.  The tracker also counts how often
each full rf *signature* (the ≡rf class) has been observed, which feeds both
the power schedule's frequency term f(α) and the RQ3 histogram (Figure 5).

Novelty is computed over *interned pair ids* (small ints the executor
collects while recording events) with plain set difference, instead of
rebuilding frozensets of abstract-event tuples per execution; the public
``seen_pairs`` / ``Observation.new_pairs`` views keep their original pair
types, materialised only for genuinely new pairs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.trace import RfPair, Trace, rf_pair_for_id

_NO_PAIRS: frozenset[RfPair] = frozenset()


@dataclass
class Observation:
    """What the feedback tracker learned from one execution."""

    new_pairs: frozenset[RfPair]
    signature: frozenset[RfPair]
    crashed: bool
    #: True when this execution's rf *combination* (the full signature) was
    #: never observed before, even if every individual pair was.
    new_signature: bool = False

    @property
    def interesting(self) -> bool:
        """isInteresting (Section 3): a never-seen abstract rf pair, a
        never-seen rf combination, or a crash.  Combination-level novelty is
        what populates the corpus with one representative per rf class, the
        precondition for the Section 4.2 power schedule to steer energy
        toward rarely observed combinations (Figure 5)."""
        return bool(self.new_pairs) or self.new_signature or self.crashed


@dataclass
class RfFeedback:
    """Cross-execution reads-from coverage state."""

    seen_pairs: set[RfPair] = field(default_factory=set)
    signature_counts: Counter = field(default_factory=Counter)
    executions: int = 0
    #: Interned pair ids behind ``seen_pairs``: the actual novelty set.
    _seen_ids: set[int] = field(default_factory=set, repr=False)

    def observe(self, trace: Trace) -> Observation:
        """Record one trace; returns the novelty summary."""
        pair_ids = trace.rf_pair_ids()
        signature = trace.rf_signature()
        seen_ids = self._seen_ids
        new_ids = pair_ids - seen_ids
        if new_ids:
            seen_ids |= new_ids
            new = frozenset([rf_pair_for_id(pid) for pid in new_ids])
            self.seen_pairs.update(new)
        else:
            new = _NO_PAIRS
        count = self.signature_counts[signature]
        self.signature_counts[signature] = count + 1
        self.executions += 1
        return Observation(
            new_pairs=new, signature=signature, crashed=trace.crashed, new_signature=count == 0
        )

    def frequency(self, signature: frozenset[RfPair]) -> int:
        """f(α): how often this rf combination has been observed."""
        return self.signature_counts[signature]

    @property
    def unique_signatures(self) -> int:
        return len(self.signature_counts)

    @property
    def pair_coverage(self) -> int:
        """Total distinct abstract rf pairs ever observed (the coverage map)."""
        return len(self.seen_pairs)
