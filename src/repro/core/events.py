"""Events and abstract events (paper Section 3).

A (concrete) event is the tuple ``e = <id, t, op(x)@l>``: a unique id, the
executing thread, an operation kind, the memory location operated on and the
code location it was issued from.  An *abstract* event drops the id and the
thread — ``ea = op(x)@l`` — so that, e.g., the first write of every setter
thread in ``reorder_100`` collapses to a single abstract event.  That
collapse is what shrinks the search space from exponentially many concrete
schedules to a handful of abstract ones (25 for ``reorder_100``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class AbstractEvent:
    """``op(x)@l`` — an operation kind, memory location and code location."""

    kind: str
    location: str
    loc: str

    @property
    def is_read(self) -> bool:
        return self.kind in _READ_KINDS

    @property
    def is_write(self) -> bool:
        return self.kind in _WRITE_KINDS

    def __str__(self) -> str:
        return f"{self.kind}({self.location})@{self.loc}"


#: Operation kinds whose events consume a value (participate as rf targets).
_READ_KINDS = frozenset({"r", "hr", "rmw", "cas", "lock", "trylock", "wait", "sem_acquire", "barrier"})
#: Operation kinds whose events produce a value (participate as rf sources).
_WRITE_KINDS = frozenset(
    {
        "w",
        "hw",
        "rmw",
        "cas",
        "lock",
        "unlock",
        "wait",
        "signal",
        "broadcast",
        "sem_acquire",
        "sem_release",
        "barrier",
        "free",
    }
)


@dataclass(frozen=True, slots=True)
class Event:
    """A concrete event ``<id, t, op(x)@l>`` plus its reads-from edge.

    ``rf`` is the event id of the write this event observed (0 denotes the
    location's initial pseudo-write) and is only set for events whose kind
    reads a value.  ``value`` records the observed/written value for
    debugging and replay validation; it is excluded from equality-relevant
    reasoning, which only ever uses ids, kinds and locations.

    ``aux`` carries structured cross-thread metadata for trace analyses:
    the spawned thread id for ``spawn`` events, the joined thread id for
    ``join`` events, and the tuple of woken thread ids for ``signal`` /
    ``broadcast`` events.
    """

    eid: int
    tid: int
    kind: str
    location: str
    loc: str
    rf: int | None = None
    value: Any = None
    aux: Any = None

    @property
    def abstract(self) -> AbstractEvent:
        return AbstractEvent(self.kind, self.location, self.loc)

    @property
    def is_read(self) -> bool:
        return self.kind in _READ_KINDS

    @property
    def is_write(self) -> bool:
        return self.kind in _WRITE_KINDS

    def __str__(self) -> str:
        rf = f" rf={self.rf}" if self.rf is not None else ""
        return f"#{self.eid} T{self.tid} {self.kind}({self.location})@{self.loc}{rf}"
