"""Events and abstract events (paper Section 3).

A (concrete) event is the tuple ``e = <id, t, op(x)@l>``: a unique id, the
executing thread, an operation kind, the memory location operated on and the
code location it was issued from.  An *abstract* event drops the id and the
thread — ``ea = op(x)@l`` — so that, e.g., the first write of every setter
thread in ``reorder_100`` collapses to a single abstract event.  That
collapse is what shrinks the search space from exponentially many concrete
schedules to a handful of abstract ones (25 for ``reorder_100``).

Because the universe of abstract events is bounded by the program's
instrumentation points (not by execution length), they are *interned*: the
module-level table keyed on ``(kind, location, loc)`` hands out one shared
instance per distinct abstract event, so the millions of per-execution
``Event.abstract`` calls in trace/feedback/mutation code stop allocating.
Interned instances are plain :class:`AbstractEvent` values — they compare
and hash identically to freshly constructed ones (equality stays purely
structural); interning only makes ``is`` coincide with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class AbstractEvent:
    """``op(x)@l`` — an operation kind, memory location and code location."""

    kind: str
    location: str
    loc: str
    #: Read/write participation, precomputed at construction (excluded from
    #: equality/hash/repr, which only ever use kind/location/loc).
    is_read: bool = field(default=False, init=False, repr=False, compare=False)
    is_write: bool = field(default=False, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "is_read", self.kind in _READ_KINDS)
        object.__setattr__(self, "is_write", self.kind in _WRITE_KINDS)

    def __str__(self) -> str:
        return f"{self.kind}({self.location})@{self.loc}"


#: Operation kinds whose events consume a value (participate as rf targets).
_READ_KINDS = frozenset({"r", "hr", "rmw", "cas", "lock", "trylock", "wait", "sem_acquire", "trysem", "barrier"})
#: Operation kinds whose events produce a value (participate as rf sources).
_WRITE_KINDS = frozenset(
    {
        "w",
        "hw",
        "rmw",
        "cas",
        "lock",
        "unlock",
        "wait",
        "signal",
        "broadcast",
        "sem_acquire",
        "sem_release",
        "barrier",
        "free",
    }
)

#: The process-global abstract-event intern table.  Grows with the number of
#: distinct instrumentation points ever seen, which is small and bounded by
#: program text, not by execution count.
_INTERNED: dict[tuple[str, str, str], AbstractEvent] = {}


def intern_abstract(kind: str, location: str, loc: str) -> AbstractEvent:
    """The canonical shared :class:`AbstractEvent` for ``op(x)@l``."""
    key = (kind, location, loc)
    cached = _INTERNED.get(key)
    if cached is None:
        cached = _INTERNED[key] = AbstractEvent(kind, location, loc)
    return cached


class Event:
    """A concrete event ``<id, t, op(x)@l>`` plus its reads-from edge.

    ``rf`` is the event id of the write this event observed (0 denotes the
    location's initial pseudo-write) and is only set for events whose kind
    reads a value.  ``value`` records the observed/written value for
    debugging and replay validation; it is excluded from equality-relevant
    reasoning, which only ever uses ids, kinds and locations.

    ``aux`` carries structured cross-thread metadata for trace analyses:
    the spawned thread id for ``spawn`` events, the joined thread id for
    ``join`` events, and the tuple of woken thread ids for ``signal`` /
    ``broadcast`` events.

    A hand-written slotted class rather than a frozen dataclass: one Event
    is constructed per executed step, and the frozen-dataclass ``__init__``
    (one ``object.__setattr__`` per field) was measurable on the executor
    hot path.  Equality, hashing and repr match the former frozen dataclass
    exactly (all eight public fields, in order).
    """

    __slots__ = ("eid", "tid", "kind", "location", "loc", "rf", "value", "aux", "_abstract")

    def __init__(
        self,
        eid: int,
        tid: int,
        kind: str,
        location: str,
        loc: str,
        rf: int | None = None,
        value: Any = None,
        aux: Any = None,
    ):
        self.eid = eid
        self.tid = tid
        self.kind = kind
        self.location = location
        self.loc = loc
        self.rf = rf
        self.value = value
        self.aux = aux
        #: Memoized interned abstract event (excluded from equality/repr).
        self._abstract: AbstractEvent | None = None

    @property
    def abstract(self) -> AbstractEvent:
        cached = self._abstract
        if cached is None:
            cached = self._abstract = intern_abstract(self.kind, self.location, self.loc)
        return cached

    @property
    def is_read(self) -> bool:
        return self.kind in _READ_KINDS

    @property
    def is_write(self) -> bool:
        return self.kind in _WRITE_KINDS

    def _key(self):
        return (self.eid, self.tid, self.kind, self.location, self.loc, self.rf, self.value, self.aux)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Event:
            return self._key() == other._key()  # type: ignore[union-attr]
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"Event(eid={self.eid!r}, tid={self.tid!r}, kind={self.kind!r}, "
            f"location={self.location!r}, loc={self.loc!r}, rf={self.rf!r}, "
            f"value={self.value!r}, aux={self.aux!r})"
        )

    def __str__(self) -> str:
        rf = f" rf={self.rf}" if self.rf is not None else ""
        return f"#{self.eid} T{self.tid} {self.kind}({self.location})@{self.loc}{rf}"
