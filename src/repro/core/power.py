"""The cut-off exponential power schedule (paper Section 4.2).

Energy assignment::

    p(α) = 0                              if f(α) > µ
         = min(γ(α)/β · 2^s(α), M)        otherwise

    µ = mean of f over the working set S+

Schedules whose rf combination is *more common than average* are skipped
outright; under-explored combinations receive exponentially increasing
energy (via s(α), the times chosen since last skipped) until they too become
over-explored.  This is what flattens the Figure 5 histogram: rare rf
combinations get fuzzed hard exactly while they remain rare.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.corpus import Corpus, CorpusEntry
from repro.core.feedback import RfFeedback


@dataclass(frozen=True)
class PowerSchedule:
    """Computes per-pick energy η_α for corpus entries."""

    #: γ normaliser (the paper's hyperparameter β).
    beta: float = 2.0
    #: Cut-off M: maximum mutations spent on one schedule per stage.
    max_energy: int = 64

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.max_energy < 1:
            raise ValueError("max_energy must be at least 1")

    def mean_frequency(self, corpus: Corpus, feedback: RfFeedback) -> float:
        """µ: average observation frequency of the corpus' rf combinations."""
        if not len(corpus):
            return 0.0
        total = sum(feedback.frequency(entry.signature) for entry in corpus)
        return total / len(corpus)

    def energy(self, entry: CorpusEntry, corpus: Corpus, feedback: RfFeedback) -> int:
        """η_α for one pick; 0 means the schedule is skipped this round."""
        mu = self.mean_frequency(corpus, feedback)
        if feedback.frequency(entry.signature) > mu:
            return 0
        # The exponent grows without bound while an entry keeps being chosen
        # (chosen_since_skip is never reset unless the entry is skipped), and
        # 2.0 ** s raises OverflowError past s ~ 1024.  Once 2^s alone would
        # clear the cut-off the result is M regardless, so short-circuit.
        base = entry.gamma / self.beta
        s = entry.chosen_since_skip
        if base > 0.0 and s > math.log2(self.max_energy / base) + 1.0:
            return self.max_energy
        raw = base * (2.0 ** min(s, 1023))
        return max(1, min(int(raw), self.max_energy))


@dataclass(frozen=True)
class FlatSchedule:
    """Ablation: constant energy, no frequency cut-off (RQ3 "no feedback")."""

    energy_per_pick: int = 1

    def energy(self, entry: CorpusEntry, corpus: Corpus, feedback: RfFeedback) -> int:
        return self.energy_per_pick
