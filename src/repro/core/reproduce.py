"""Bug identity and replay verification: the reproduction layer of triage.

A long campaign produces thousands of crashing executions of a handful of
underlying bugs.  Two facilities turn that pile into verified findings:

* **dedup keys** — :func:`dedup_key` summarises a crashing execution as
  ``(violation kind, frame hash, rf hash)``: the bug taxonomy kind, a hash
  of the stable ``function:line`` failure frames, and a hash of the
  abstract reads-from pairs observed *at those frames*.  All three
  components are execution-independent (no event ids, no schedule
  positions), so the same bug found through different interleavings folds
  into one bucket while distinct bugs at the same program point split on
  the rf component.
* **replay verification** — :func:`verify_replay` re-executes a recorded
  concrete schedule N times and demands the identical outcome, dedup key
  and zero divergence on every run.  Only then is a bug ``STABLE`` and
  worth shipping as a reproducer; anything else is ``FLAKY`` and must be
  quarantined, never reported as reproduced (rr's record-and-replay lesson:
  divergence detection is the hard part that must be engineered).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.runtime.executor import DEFAULT_MAX_STEPS, ExecutionResult, Executor
from repro.schedulers.replay import ReplayPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.analysis.online import SanitizerReport
    from repro.runtime.guard import GuardConfig
    from repro.runtime.program import Program

#: Replay verdicts.
STABLE = "STABLE"
FLAKY = "FLAKY"

#: (violation kind, frame hash, rf hash) — the triage bucket signature.
DedupKey = tuple[str, str, str]


def _short_hash(parts: Iterable[str]) -> str:
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:12]


def failure_frames(result: ExecutionResult) -> tuple[str, ...]:
    """The stable frames of a crashing execution, with a last-event fallback."""
    frames = tuple(result.failure_frames)
    if not frames and result.trace.events:
        frames = (result.trace.events[-1].loc,)
    return frames


def dedup_key(result: ExecutionResult) -> DedupKey:
    """Execution-independent identity of a crashing execution's bug.

    ``(kind, frame hash, rf hash)``: the rf component hashes the abstract
    reads-from pairs whose reader executed at one of the failure frames, so
    two different bugs crashing at the same program point (e.g. reading two
    different stale variables) still split into separate buckets.
    """
    kind = result.outcome or "none"
    frames = failure_frames(result)
    frame_hash = _short_hash(frames)
    frame_locs = set(frames)
    pairs = sorted(
        str(pair) for pair in result.trace.rf_pairs() if pair[1].loc in frame_locs
    )
    return (kind, frame_hash, _short_hash(pairs))


def sanitizer_key(report: "SanitizerReport") -> DedupKey:
    """A sanitizer finding's identity in the same triage signature shape."""
    return (f"sanitizer:{report.sanitizer}", report.kind, _short_hash(report.pair))


def bucket_id(key: DedupKey) -> str:
    """Human-grep-able short bucket name, e.g. ``assertion-4f1a09c2b3d4``."""
    return f"{key[0]}-{_short_hash(key)}"


def same_bucket(expected_key: DedupKey) -> Callable[[ExecutionResult], bool]:
    """Predicate: the execution crashed *into the given bucket* (not merely
    crashed) — the invariant schedule minimization must preserve."""

    def predicate(result: ExecutionResult) -> bool:
        return result.crashed and dedup_key(result) == expected_key

    return predicate


# ----------------------------------------------------------------------
# Replay verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayRun:
    """One replay execution's observation, compared against expectations."""

    outcome: str | None
    key: DedupKey | None
    diverged: int | None
    steps: int
    matched: bool


@dataclass(frozen=True)
class ReplayVerdict:
    """Aggregate of N replay runs of one recorded bug."""

    verdict: str
    replays: int
    matches: int
    expected_outcome: str | None
    expected_key: DedupKey | None
    runs: tuple[ReplayRun, ...]

    @property
    def stable(self) -> bool:
        return self.verdict == STABLE

    @property
    def first_divergence(self) -> int | None:
        """Earliest divergence step across all replay runs (None = exact)."""
        points = [run.diverged for run in self.runs if run.diverged is not None]
        return min(points) if points else None


def verify_replay(
    program: "Program",
    schedule: Sequence[int],
    expected_outcome: str | None,
    expected_key: DedupKey | None = None,
    *,
    replays: int = 5,
    max_steps: int | None = None,
    sanitizers: tuple[str, ...] = (),
    expected_sanitizer_key: tuple | None = None,
    executor_class: type[Executor] | None = None,
    guard: "GuardConfig | None" = None,
) -> ReplayVerdict:
    """Re-execute ``schedule`` ``replays`` times and classify STABLE/FLAKY.

    A replay *matches* when it follows the recorded schedule without
    divergence and reproduces the expected outcome and dedup key (for
    sanitizer findings: a report with ``expected_sanitizer_key`` appears).
    STABLE requires every replay to match; anything less is FLAKY.

    ``guard``, ``sanitizers``, ``max_steps`` and ``executor_class`` must
    mirror the configuration of the execution that found the bug — replay
    fidelity includes the runtime environment, not just the schedule.
    """
    if replays < 1:
        raise ValueError(f"replays must be >= 1, got {replays}")
    cls = executor_class or Executor
    steps = max_steps or program.max_steps or DEFAULT_MAX_STEPS
    if guard is not None and guard.wall_seconds is not None:
        # The wall-clock watchdog is the one nondeterministic guard: a slow
        # machine (or a debugger pause) would flip a genuinely STABLE
        # reproducer to FLAKY.  Replay fidelity is already policed by the
        # deterministic step budget and divergence tracking, so strip the
        # wall clock for verification runs only.
        import dataclasses

        guard = dataclasses.replace(guard, wall_seconds=None)
    stack_builder = None
    if sanitizers:
        from repro.analysis.online import build_stack

        stack_builder = build_stack
    runs: list[ReplayRun] = []
    for _ in range(replays):
        stack = stack_builder(sanitizers) if stack_builder else None
        result = cls(
            program,
            ReplayPolicy(list(schedule)),
            max_steps=steps,
            sanitizers=stack,
            guard=guard,
        ).run()
        followed = result.diverged is None
        if expected_sanitizer_key is not None:
            key = None
            matched = followed and any(
                report.dedup_key == expected_sanitizer_key
                for report in result.sanitizer_reports
            )
        else:
            key = dedup_key(result) if result.crashed else None
            matched = (
                followed
                and result.outcome == expected_outcome
                and (expected_key is None or key == expected_key)
            )
        runs.append(
            ReplayRun(
                outcome=result.outcome,
                key=key,
                diverged=result.diverged,
                steps=result.steps,
                matched=matched,
            )
        )
    matches = sum(1 for run in runs if run.matched)
    from repro.harness.telemetry import GLOBAL_COUNTERS

    GLOBAL_COUNTERS.replays += len(runs)
    return ReplayVerdict(
        verdict=STABLE if matches == len(runs) else FLAKY,
        replays=len(runs),
        matches=matches,
        expected_outcome=expected_outcome,
        expected_key=expected_key,
        runs=tuple(runs),
    )
