"""The program-facing API: what benchmark threads are written against.

A benchmark program is a generator function ``main(t)`` receiving an
:class:`Api` instance ``t``.  Shared objects are created through the factory
methods (``t.var``, ``t.mutex``, ...) and every visible operation is
*yielded*::

    def main(t):
        a = t.var("a", 0)
        b = t.var("b", 0)
        for _ in range(100):
            yield t.spawn(setter, a, b)
        yield t.spawn(checker, a, b)

    def setter(t, a, b):
        yield t.write(a, 1)
        yield t.write(b, -1)

    def checker(t, a, b):
        va = yield t.read(a)
        vb = yield t.read(b)
        t.require((va == 0 and vb == 0) or (va == 1 and vb == -1))

The yield is the serialization point: the executor chooses which thread's
pending operation runs next, giving scheduler policies full per-event control
of the interleaving — the role played by E9Patch instrumentation plus
``libsched.so`` in the paper's native implementation (Section 4.1).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime import ops
from repro.runtime.errors import AssertionViolation, ProgramError
from repro.runtime.objects import Barrier, CondVar, Heap, HeapObject, Mutex, Semaphore, SharedVar
from repro.runtime.thread import ThreadHandle


class Api:
    """Execution-scoped facade handed to every thread body.

    One instance is shared by all threads of an execution; the executor knows
    which thread yielded each operation, so the facade itself is stateless
    apart from the object registries (which enforce unique names to prevent
    accidental aliasing in benchmark programs).
    """

    def __init__(self) -> None:
        self.heap = Heap()
        self._objects: dict[str, Any] = {}
        self._cleanups: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Execution-scoped cleanups
    # ------------------------------------------------------------------
    def add_cleanup(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run when the execution ends (LIFO order).

        The executor invokes cleanups after closing every thread generator,
        whatever the outcome (completion, crash, truncation, harness error).
        The real-Python substrate uses this to abort parked OS threads and
        restore the stdlib monkeypatches.
        """
        self._cleanups.append(fn)

    def run_cleanups(self) -> None:
        """Run and clear all registered cleanups, most recent first."""
        while self._cleanups:
            self._cleanups.pop()()

    # ------------------------------------------------------------------
    # Shared-object factories
    # ------------------------------------------------------------------
    def _register(self, obj: Any, name: str) -> Any:
        if name in self._objects:
            raise ProgramError(f"shared object name {name!r} created twice")
        self._objects[name] = obj
        return obj

    def var(self, name: str, init: Any = 0) -> SharedVar:
        """Create a shared variable initialised to ``init``."""
        return self._register(SharedVar(name, init), f"var:{name}")

    def mutex(self, name: str, error_checking: bool = True) -> Mutex:
        """Create a non-reentrant mutex."""
        return self._register(Mutex(name, error_checking), f"mutex:{name}")

    def cond(self, name: str) -> CondVar:
        """Create a condition variable with FIFO wakeup."""
        return self._register(CondVar(name), f"cond:{name}")

    def sem(self, name: str, init: int = 0) -> Semaphore:
        """Create a counting semaphore."""
        return self._register(Semaphore(name, init), f"sem:{name}")

    def barrier(self, name: str, parties: int) -> Barrier:
        """Create a cyclic barrier for ``parties`` threads."""
        return self._register(Barrier(name, parties), f"barrier:{name}")

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------
    def read(self, var: SharedVar, loc: str | None = None) -> ops.ReadOp:
        """Read ``var``; the yield evaluates to the value read."""
        return ops.ReadOp(var=var, loc=loc)

    def write(self, var: SharedVar, value: Any, loc: str | None = None) -> ops.WriteOp:
        """Write ``value`` to ``var``."""
        return ops.WriteOp(var=var, value=value, loc=loc)

    def rmw(self, var: SharedVar, func: Callable[[Any], Any], loc: str | None = None) -> ops.RmwOp:
        """Atomically apply ``func`` to ``var``; yields the old value."""
        return ops.RmwOp(var=var, func=func, loc=loc)

    def add(self, var: SharedVar, delta: Any, loc: str | None = None) -> ops.RmwOp:
        """Atomic fetch-and-add; yields the old value."""
        return ops.RmwOp(var=var, func=lambda old: old + delta, loc=loc)

    def cas(self, var: SharedVar, expected: Any, new: Any, loc: str | None = None) -> ops.CasOp:
        """Atomic compare-and-swap; yields True on success."""
        return ops.CasOp(var=var, expected=expected, new=new, loc=loc)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def lock(self, mutex: Mutex, loc: str | None = None) -> ops.LockOp:
        """Acquire ``mutex``; blocks while held by another thread."""
        return ops.LockOp(mutex=mutex, loc=loc)

    def trylock(self, mutex: Mutex, loc: str | None = None) -> ops.TryLockOp:
        """Attempt to acquire ``mutex``; yields True on success."""
        return ops.TryLockOp(mutex=mutex, loc=loc)

    def unlock(self, mutex: Mutex, loc: str | None = None) -> ops.UnlockOp:
        """Release ``mutex``."""
        return ops.UnlockOp(mutex=mutex, loc=loc)

    def wait(self, cond: CondVar, mutex: Mutex, loc: str | None = None) -> ops.WaitOp:
        """pthread-style wait: release ``mutex``, block, re-acquire on wakeup."""
        return ops.WaitOp(cond=cond, mutex=mutex, loc=loc)

    def signal(self, cond: CondVar, loc: str | None = None) -> ops.SignalOp:
        """Wake one waiter (FIFO); a no-op if none are waiting (lost wakeup)."""
        return ops.SignalOp(cond=cond, loc=loc)

    def broadcast(self, cond: CondVar, loc: str | None = None) -> ops.BroadcastOp:
        """Wake every waiter of ``cond``."""
        return ops.BroadcastOp(cond=cond, loc=loc)

    def acquire(self, sem: Semaphore, loc: str | None = None) -> ops.SemAcquireOp:
        """Decrement ``sem``; blocks while the count is zero."""
        return ops.SemAcquireOp(sem=sem, loc=loc)

    def try_acquire(self, sem: Semaphore, loc: str | None = None) -> ops.TrySemAcquireOp:
        """Attempt to decrement ``sem`` without blocking; yields True on success."""
        return ops.TrySemAcquireOp(sem=sem, loc=loc)

    def release(self, sem: Semaphore, loc: str | None = None) -> ops.SemReleaseOp:
        """Increment ``sem``."""
        return ops.SemReleaseOp(sem=sem, loc=loc)

    def arrive(self, barrier: Barrier, loc: str | None = None) -> ops.BarrierOp:
        """Arrive at ``barrier``; blocks until all parties arrive."""
        return ops.BarrierOp(barrier=barrier, loc=loc)

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def spawn(self, fn: Callable[..., Any], *args: Any, name: str | None = None) -> ops.SpawnOp:
        """Start a thread running ``fn(t, *args)``; yields its handle."""
        return ops.SpawnOp(fn=fn, args=args, name=name)

    def join(self, handle: ThreadHandle, loc: str | None = None) -> ops.JoinOp:
        """Block until ``handle``'s thread finishes."""
        return ops.JoinOp(handle=handle, loc=loc)

    def pause(self, loc: str | None = None) -> ops.YieldOp:
        """A pure scheduling point with no memory effect."""
        return ops.YieldOp(loc=loc)

    # ------------------------------------------------------------------
    # Heap (memory-safety oracles)
    # ------------------------------------------------------------------
    def malloc(self, site: str = "obj", **fields: Any) -> ops.MallocOp:
        """Allocate a heap object; yields the :class:`HeapObject`."""
        return ops.MallocOp(site=site, fields=dict(fields))

    def free(self, obj: HeapObject | None, loc: str | None = None) -> ops.FreeOp:
        """Free a heap object (double frees crash with the DoubleFree oracle)."""
        return ops.FreeOp(obj=obj, loc=loc)

    def heap_read(self, obj: HeapObject | None, field: str = "val", loc: str | None = None) -> ops.HeapReadOp:
        """Read ``obj.field``; UAF / null-dereference oracles apply."""
        return ops.HeapReadOp(obj=obj, field_name=field, loc=loc)

    def heap_write(
        self, obj: HeapObject | None, field: str, value: Any, loc: str | None = None
    ) -> ops.HeapWriteOp:
        """Write ``obj.field``; UAF / null-dereference oracles apply."""
        return ops.HeapWriteOp(obj=obj, field_name=field, value=value, loc=loc)

    # ------------------------------------------------------------------
    # Oracles
    # ------------------------------------------------------------------
    def require(self, condition: Any, message: str = "assertion failed") -> None:
        """Program assertion: raising here is the paper's crash oracle."""
        if not condition:
            raise AssertionViolation(message)

    def fail(self, message: str = "explicit failure") -> None:
        """Unconditionally signal an assertion violation."""
        raise AssertionViolation(message)
