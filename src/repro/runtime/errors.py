"""Failure oracles raised (or reported) by the deterministic runtime.

The paper (Section 5.1, "Bugs") classifies the 49 benchmark bugs into three
kinds: assertion violations, deadlocks, and concurrency-related memory-safety
issues.  The runtime mirrors that taxonomy: each class below corresponds to
one oracle, and :class:`~repro.runtime.executor.Executor` converts them into
``ExecutionResult.outcome`` values so scheduler policies and the fuzzer never
have to catch exceptions themselves.
"""

from __future__ import annotations


class RuntimeViolation(Exception):
    """Base class for every bug oracle the runtime can report."""

    #: Short machine-readable bug category, overridden by subclasses.
    kind = "violation"
    #: Stable ``function:line`` frames pinpointing where the violation
    #: happened; filled in by the executor (or the raiser) and surfaced as
    #: ``ExecutionResult.failure_frames`` so triage can hash them into a
    #: bucket signature.
    frames: tuple[str, ...] = ()


class AssertionViolation(RuntimeViolation):
    """A program-level assertion failed (``api.require(...)`` was false)."""

    kind = "assertion"


class DeadlockDetected(RuntimeViolation):
    """No thread is enabled but at least one has not finished.

    Detected by the executor rather than raised by program code, matching the
    paper's built-in deadlock detector (Section 5.1).
    """

    kind = "deadlock"

    def __init__(self, blocked_threads: tuple[int, ...]):
        super().__init__(f"deadlock among threads {sorted(blocked_threads)}")
        self.blocked_threads = tuple(blocked_threads)


class ExecutionTimeout(RuntimeViolation):
    """The guard's step budget or wall-clock watchdog expired.

    ``deterministic`` distinguishes the step-budget watchdog (bit-identical
    across replays and across serial/parallel campaigns) from the wall-clock
    one (best-effort, machine-dependent).
    """

    kind = "timeout"

    def __init__(self, message: str, deterministic: bool = True):
        super().__init__(message)
        self.deterministic = deterministic


class LivelockDetected(RuntimeViolation):
    """The enabled set kept cycling with no new events for a full window.

    Raised by the guard's livelock detector: ``window`` consecutive steps
    each repeated an already-seen event fingerprint while no thread finished
    — the signature of CAS retry storms and lost-wakeup spin loops.
    """

    kind = "livelock"

    def __init__(self, message: str, window: int = 0):
        super().__init__(message)
        self.window = window


class UncaughtProgramException(RuntimeViolation):
    """An arbitrary exception escaped a benchmark generator.

    The executor converts it into a structured violation (with the original
    exception type and the program-level ``function:line`` frames captured
    from its traceback) so one misbehaving benchmark crashes the execution,
    not the fuzzer.
    """

    kind = "exception"

    def __init__(self, exc_type: str, detail: str, frames: tuple[str, ...] = ()):
        location = f" @ {frames[-1]}" if frames else ""
        super().__init__(f"{exc_type}: {detail}{location}")
        self.exc_type = exc_type
        self.frames = tuple(frames)


class MemorySafetyViolation(RuntimeViolation):
    """Use-after-free, double-free or invalid-pointer access on the model heap."""

    kind = "memory-safety"


class UseAfterFree(MemorySafetyViolation):
    """A heap object was read or written after it had been freed."""

    kind = "use-after-free"


class DoubleFree(MemorySafetyViolation):
    """A heap object was freed twice."""

    kind = "double-free"


class NullDereference(MemorySafetyViolation):
    """A ``None`` reference was dereferenced as a heap object."""

    kind = "null-dereference"


class ProgramError(Exception):
    """A benchmark program is malformed (not a concurrency bug).

    Raised for misuse of the runtime API, e.g. unlocking a mutex the calling
    thread does not own when the mutex is configured as error-checking, or
    joining a thread handle twice.  These abort the execution and are reported
    as harness errors rather than discovered bugs.
    """


class SchedulerError(Exception):
    """A scheduler policy returned an invalid choice (harness bug, not PUT bug)."""
