"""x86-TSO execution: the paper's weak-memory future-work direction.

Section 4.1 ("Memory Model"): *"Our implementation assumes sequential
consistency ... We look forward to future work which can apply principles
from RFF to expose bugs arising from weak memory behaviours."*  This module
is that extension: a drop-in executor implementing the x86-TSO model with
per-thread FIFO store buffers.

Semantics (Owens, Sarkar & Sewell's x86-TSO, reduced to this runtime):

* a plain ``write`` to a shared variable enters the writing thread's store
  buffer instead of memory; the event is recorded immediately (that is the
  program-order point) but only becomes *visible* when flushed;
* a plain ``read`` forwards from the youngest buffered store of the *own*
  thread to that location, falling back to memory;
* a ``flush`` step — a scheduler-visible pseudo-event attributed to the
  buffering thread — drains the oldest buffered store to memory.  The
  scheduler chooses flush points exactly like any other event, so the
  schedule fuzzer explores store-buffer interleavings too;
* atomic operations (``rmw``/``cas``) and every synchronization operation
  act as fences: they drain the executing thread's buffer first, matching
  x86 locked instructions / ``mfence``;
* executions complete only once every buffer is empty.

Reads-from edges always point at the original ``w`` event (not the flush),
so abstract schedules and the proactive scheduler work unchanged under TSO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.events import Event
from repro.runtime import ops
from repro.runtime.executor import Candidate, Executor
from repro.runtime.objects import SharedVar
from repro.runtime.thread import ThreadState

#: Pseudo-kind used for store-buffer drain steps.
FLUSH_KIND = "flush"
#: Operation kinds that fence (drain) the executing thread's buffer.
_FENCING_KINDS = frozenset(
    {
        "rmw",
        "cas",
        "lock",
        "trylock",
        "unlock",
        "wait",
        "signal",
        "broadcast",
        "sem_acquire",
        "trysem",
        "sem_release",
        "barrier",
        "spawn",
        "join",
    }
)


@dataclass
class BufferedStore:
    """One pending store in a thread's FIFO store buffer."""

    var: SharedVar
    value: Any
    #: Event id of the original write event (the rf source after flush).
    write_eid: int
    location: str


class TsoExecutor(Executor):
    """Executor with per-thread store buffers (x86-TSO)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._buffers: dict[int, list[BufferedStore]] = {}

    # ------------------------------------------------------------------
    def buffer_of(self, tid: int) -> list[BufferedStore]:
        return self._buffers.setdefault(tid, [])

    def pending_stores(self) -> int:
        """Total buffered (not yet visible) stores across all threads."""
        return sum(len(buffer) for buffer in self._buffers.values())

    def _all_done(self) -> bool:
        return super()._all_done() and self.pending_stores() == 0

    # ------------------------------------------------------------------
    def enabled_candidates(self) -> list[Candidate]:
        candidates = super().enabled_candidates()
        for tid, buffer in self._buffers.items():
            if buffer:
                candidates.append(
                    Candidate(
                        tid=tid,
                        kind=FLUSH_KIND,
                        location=buffer[0].location,
                        loc="tso:flush",
                    )
                )
        return candidates

    def _execute(self, choice: Candidate) -> Event:
        if choice.kind == FLUSH_KIND:
            # The main loop notifies the policy about the returned event.
            return self._flush_one(choice.tid, notify=False)
        thread = self.threads[choice.tid]
        if thread.pending is not None and thread.pending.kind in _FENCING_KINDS:
            self._drain(choice.tid)
        return super()._execute(choice)

    # ------------------------------------------------------------------
    def _flush_one(self, tid: int, notify: bool = True) -> Event:
        buffer = self.buffer_of(tid)
        store = buffer.pop(0)
        store.var.value = store.value
        # Visibility point: later reads-from edges target the original write.
        self._last_write[store.location] = store.write_eid
        self._last_write_event[store.location] = self.trace.event_by_id(store.write_eid)
        eid = self._next_eid
        self._next_eid += 1
        event = Event(
            eid=eid,
            tid=tid,
            kind=FLUSH_KIND,
            location=store.location,
            loc="tso:flush",
            value=store.value,
            aux=store.write_eid,
        )
        self._record(event)
        if notify:
            self.policy.notify(event, self)
        return event

    def _drain(self, tid: int) -> None:
        """Fence: synchronously flush every buffered store of ``tid``."""
        while self.buffer_of(tid):
            self._flush_one(tid)

    # ------------------------------------------------------------------
    # Per-op apply handlers (picked up by the base class's dispatch table).
    def _apply_write(self, thread: ThreadState, op: ops.WriteOp, eid: int, location: str):
        self.buffer_of(thread.tid).append(
            BufferedStore(var=op.var, value=op.value, write_eid=eid, location=location)
        )
        # The store is buffered: memory and last-writer stay untouched
        # (the base class would mark the write globally visible).
        return None, op.value, op.value, True, None

    def _apply_read(self, thread: ThreadState, op: ops.ReadOp, eid: int, location: str):
        for store in reversed(self.buffer_of(thread.tid)):
            if store.location == location:
                # Store forwarding: the thread sees its own youngest
                # buffered write before anyone else does.
                return store.write_eid, store.value, store.value, True, None
        return super()._apply_read(thread, op, eid, location)

    def _writes(self, op: ops.Op, value: Any) -> bool:
        # Buffered stores are not yet globally visible: suppress the base
        # class's last-writer update for plain writes; flushes handle it.
        if isinstance(op, ops.WriteOp) and isinstance(op.var, SharedVar):
            return False
        return super()._writes(op, value)


def run_program_tso(program, policy, max_steps: int | None = None):
    """Convenience wrapper: one TSO execution of ``program`` under ``policy``."""
    from repro.runtime.executor import DEFAULT_MAX_STEPS

    return TsoExecutor(program, policy, max_steps=max_steps or DEFAULT_MAX_STEPS).run()
