"""Deterministic user-mode concurrency runtime (the paper's substrate).

Programs are generator coroutines yielding operations; the
:class:`~repro.runtime.executor.Executor` serializes all threads and lets a
scheduler policy choose the interleaving one event at a time — the Python
equivalent of the paper's E9Patch instrumentation + ``libsched.so`` scheduler
(Section 4.1).
"""

from repro.runtime.api import Api
from repro.runtime.errors import (
    AssertionViolation,
    DeadlockDetected,
    DoubleFree,
    MemorySafetyViolation,
    NullDereference,
    ProgramError,
    RuntimeViolation,
    SchedulerError,
    UseAfterFree,
)
from repro.runtime.diagnostics import DeterminismReport, trace_to_dot, verify_determinism
from repro.runtime.executor import Candidate, ExecutionResult, Executor, run_program
from repro.runtime.objects import Barrier, CondVar, Heap, HeapObject, Mutex, Semaphore, SharedVar
from repro.runtime.program import Program, program
from repro.runtime.thread import ThreadHandle, ThreadState, ThreadStatus
from repro.runtime.tso import BufferedStore, TsoExecutor, run_program_tso

__all__ = [
    "Api",
    "AssertionViolation",
    "Barrier",
    "BufferedStore",
    "Candidate",
    "CondVar",
    "DeadlockDetected",
    "DeterminismReport",
    "DoubleFree",
    "ExecutionResult",
    "Executor",
    "Heap",
    "HeapObject",
    "MemorySafetyViolation",
    "Mutex",
    "NullDereference",
    "Program",
    "ProgramError",
    "RuntimeViolation",
    "SchedulerError",
    "Semaphore",
    "SharedVar",
    "ThreadHandle",
    "ThreadState",
    "ThreadStatus",
    "TsoExecutor",
    "UseAfterFree",
    "program",
    "run_program",
    "trace_to_dot",
    "verify_determinism",
    "run_program_tso",
]
