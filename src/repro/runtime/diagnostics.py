"""Developer diagnostics for programs under test.

The runtime guarantees determinism *given* a deterministic program — but a
benchmark author can accidentally smuggle nondeterminism in (wall-clock
reads, ``random`` without a seed, iteration over ``id``-ordered sets).
:func:`verify_determinism` catches that early, and :func:`trace_to_dot`
exports a trace's happens-before structure for graph tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trace import Trace
from repro.runtime.executor import DEFAULT_MAX_STEPS, Executor
from repro.runtime.program import Program
from repro.schedulers.pos import PosPolicy


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of a determinism check."""

    deterministic: bool
    seeds_checked: int
    #: Seed of the first diverging pair (None when deterministic).
    diverging_seed: int | None = None
    detail: str = ""


def verify_determinism(
    program: Program,
    seeds: int = 10,
    max_steps: int | None = None,
) -> DeterminismReport:
    """Run each seed twice and compare traces event-for-event.

    A divergence means the *program* (not the runtime) is nondeterministic
    — its behaviour depends on something other than the schedule — which
    silently breaks replay, abstract-schedule feedback and every
    deterministic baseline.
    """
    steps = max_steps or program.max_steps or DEFAULT_MAX_STEPS
    for seed in range(seeds):
        first = Executor(program, PosPolicy(seed), max_steps=steps).run()
        second = Executor(program, PosPolicy(seed), max_steps=steps).run()
        # Compare structure AND values: value divergence (e.g. a wall-clock
        # read) is exactly the smuggled-nondeterminism case to catch.
        a = [f"{e} ={e.value!r}" for e in first.trace]
        b = [f"{e} ={e.value!r}" for e in second.trace]
        if a != b or first.outcome != second.outcome:
            mismatch = next(
                (i for i, (x, y) in enumerate(zip(a, b)) if x != y), min(len(a), len(b))
            )
            return DeterminismReport(
                deterministic=False,
                seeds_checked=seed + 1,
                diverging_seed=seed,
                detail=f"first divergence at event index {mismatch}",
            )
    return DeterminismReport(deterministic=True, seeds_checked=seeds)


def trace_to_dot(trace: Trace, include_program_order: bool = True) -> str:
    """Render a trace's event graph in Graphviz DOT.

    Nodes are events (labelled ``T<tid>: op(x)@l``); solid edges are
    program order, dashed edges are reads-from.  Paste into any DOT viewer
    to inspect the interleaving structure of a crash.
    """
    lines = ["digraph trace {", "  rankdir=TB;", '  node [shape=box, fontsize=10];']
    for event in trace.events:
        label = f"T{event.tid}: {event.kind}({event.location})\\n@{event.loc}"
        lines.append(f'  e{event.eid} [label="{label}"];')
    if include_program_order:
        last_of_thread: dict[int, int] = {}
        for event in trace.events:
            prior = last_of_thread.get(event.tid)
            if prior is not None:
                lines.append(f"  e{prior} -> e{event.eid};")
            last_of_thread[event.tid] = event.eid
    for event in trace.events:
        if event.rf not in (None, 0):
            lines.append(f'  e{event.rf} -> e{event.eid} [style=dashed, label="rf"];')
    if trace.outcome:
        lines.append(f'  outcome [label="{trace.outcome}", shape=octagon, color=red];')
        if trace.events:
            lines.append(f"  e{trace.events[-1].eid} -> outcome [color=red];")
    lines.append("}")
    return "\n".join(lines)
