"""Program descriptors: the unit the harness tests.

A :class:`Program` bundles a ``main`` generator function with the metadata
the harness needs: which bug kinds the program is known to contain (the
paper's Section 5.1 taxonomy), how many schedules a systematic tool may
spend, and whether the GenMC-style model-checker stand-in supports it
(mirroring the paper's ``Error`` rows in Appendix B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.runtime.api import Api

#: Signature of a program entry point: ``main(t)`` yielding operations.
MainFn = Callable[[Api], Generator[Any, Any, Any]]


@dataclass(frozen=True)
class Program:
    """A concurrent program under test.

    ``main`` runs as thread 0 and typically spawns worker threads.  Programs
    are pure factories: every execution calls ``main`` with a fresh
    :class:`Api`, so there is no shared state between schedules.
    """

    name: str
    main: MainFn
    #: Bug kinds this program can expose ("assertion", "deadlock",
    #: "use-after-free", ...). Empty for bug-free programs.
    bug_kinds: frozenset[str] = frozenset()
    #: Benchmark suite the program models (e.g. "CS", "ConVul").
    suite: str = ""
    #: Whether the model-checker stand-in accepts the program (False mirrors
    #: GenMC's "Error" rows: unsupported constructs / too-dynamic programs).
    mc_supported: bool = False
    #: Free-form notes on what the model abstracts from the original subject.
    description: str = ""
    #: Per-execution step bound override (None = executor default).
    max_steps: int | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("program needs a non-empty name")

    @property
    def has_bug(self) -> bool:
        return bool(self.bug_kinds)

    def __str__(self) -> str:
        return self.name


def program(
    name: str,
    *,
    bug_kinds: tuple[str, ...] = (),
    suite: str = "",
    mc_supported: bool = False,
    description: str = "",
    max_steps: int | None = None,
) -> Callable[[MainFn], Program]:
    """Decorator sugar: ``@program("CS/account", bug_kinds=("assertion",))``."""

    def wrap(main: MainFn) -> Program:
        return Program(
            name=name,
            main=main,
            bug_kinds=frozenset(bug_kinds),
            suite=suite or name.split("/")[0],
            mc_supported=mc_supported,
            description=description or (main.__doc__ or "").strip(),
            max_steps=max_steps,
        )

    return wrap
