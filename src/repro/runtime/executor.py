"""The serializing executor: one visible event per step, policy-chosen.

This module is the Python stand-in for the paper's ``libsched.so`` user-mode
scheduler (Section 4.1).  All threads of the program under test are advanced
by a single loop that, before every visible event, computes the set of
*enabled* threads and asks a pluggable :class:`SchedulerPolicy` which one
runs next.  Execution is fully deterministic given the policy's decisions,
which is what makes schedules replayable and the reads-from relation a
stable feedback signal.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Iterable

from repro.core.events import AbstractEvent, Event
from repro.core.trace import Trace
from repro.runtime import ops
from repro.runtime.api import Api
from repro.runtime.errors import (
    DeadlockDetected,
    NullDereference,
    ProgramError,
    RuntimeViolation,
    SchedulerError,
    UncaughtProgramException,
)
from repro.runtime.guard import GuardConfig, Watchdog
from repro.runtime.objects import Barrier, CondVar, Mutex
from repro.runtime.thread import ThreadHandle, ThreadState, ThreadStatus

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.online import Sanitizer, SanitizerReport
    from repro.runtime.program import Program
    from repro.schedulers.base import SchedulerPolicy

#: Default bound on events per execution, guarding against spin-heavy
#: schedules (e.g. CAS retry loops the policy keeps re-scheduling).
DEFAULT_MAX_STEPS = 20_000

#: Lazily bound process-global telemetry counters.  The import must be
#: deferred: ``repro.harness`` imports this module at package init, so a
#: top-level import of ``repro.harness.telemetry`` would be circular.
_COUNTERS = None


def _global_counters():
    global _COUNTERS
    if _COUNTERS is None:
        from repro.harness.telemetry import GLOBAL_COUNTERS

        _COUNTERS = GLOBAL_COUNTERS
    return _COUNTERS


@dataclass(frozen=True)
class Candidate:
    """One enabled thread together with the event it would execute next."""

    tid: int
    kind: str
    location: str
    loc: str

    @property
    def abstract(self) -> AbstractEvent:
        """The abstract event ``op(x)@l`` this candidate would produce."""
        return AbstractEvent(self.kind, self.location, self.loc)

    def __str__(self) -> str:
        return f"T{self.tid}:{self.kind}({self.location})@{self.loc}"


@dataclass
class ExecutionResult:
    """Outcome of one complete execution under a scheduler policy."""

    trace: Trace
    #: Thread ids in the order their events executed (the concrete schedule).
    schedule: list[int]
    steps: int
    #: True when the step bound was hit before all threads finished.
    truncated: bool = False
    #: Findings of the execution's online sanitizer stack (empty when none
    #: was attached).
    sanitizer_reports: list["SanitizerReport"] = field(default_factory=list)
    #: Stable ``function:line`` frames of the failure (empty when the
    #: execution completed normally); the triage bucket's frame component.
    failure_frames: tuple[str, ...] = ()
    #: First step at which a replaying policy could not follow its recorded
    #: schedule (None = exact replay, or the policy does not replay at all).
    #: Surfaced here so callers never reach into the policy object.
    diverged: int | None = None

    @property
    def crashed(self) -> bool:
        return self.trace.crashed

    @property
    def outcome(self) -> str | None:
        return self.trace.outcome

    @property
    def timed_out(self) -> bool:
        """True when a guard watchdog (step budget / wall clock) tripped."""
        return self.trace.outcome == "timeout"

    @property
    def livelocked(self) -> bool:
        """True when the guard's livelock detector tripped."""
        return self.trace.outcome == "livelock"


def _innermost_frame(gen: Generator) -> Any:
    """Follow ``yield from`` delegation to the innermost suspended frame."""
    inner = gen
    while getattr(inner, "gi_yieldfrom", None) is not None and hasattr(inner.gi_yieldfrom, "gi_frame"):
        inner = inner.gi_yieldfrom
    return getattr(inner, "gi_frame", None), getattr(inner, "gi_code", None)


#: The runtime package directory; traceback frames inside it are executor
#: machinery, not program code, and are dropped from captured failure frames.
_RUNTIME_DIR = os.path.dirname(os.path.abspath(__file__))


def _frames_from_traceback(tb) -> tuple[str, ...]:
    """Stable ``function:line`` frames of program code in a traceback.

    The labels match :func:`_derive_loc` (and thus event ``loc`` fields), so
    triage can hash exception frames and event frontiers interchangeably.
    """
    frames = []
    for entry in traceback.extract_tb(tb):
        if os.path.dirname(os.path.abspath(entry.filename)) == _RUNTIME_DIR:
            continue
        frames.append(f"{entry.name}:{entry.lineno}")
    return tuple(frames)


def _derive_loc(gen: Generator) -> str:
    """A stable ``function:line`` label for the yield that produced an op.

    This plays the role of the source-code location ``l`` in abstract events:
    identical program points in different threads (or different executions)
    receive identical labels.
    """
    frame, code = _innermost_frame(gen)
    if frame is not None:
        return f"{frame.f_code.co_name}:{frame.f_lineno}"
    if code is not None:  # pragma: no cover - suspended generators have frames
        return f"{code.co_name}:?"
    return "?:?"


def _op_location(op: ops.Op) -> str:
    """The memory location ``x`` an operation acts on."""
    if isinstance(op, (ops.ReadOp, ops.WriteOp, ops.RmwOp, ops.CasOp)):
        return op.var.location
    if isinstance(op, (ops.LockOp, ops.TryLockOp, ops.UnlockOp)):
        return op.mutex.location
    if isinstance(op, (ops.WaitOp, ops.SignalOp, ops.BroadcastOp)):
        return op.cond.location
    if isinstance(op, (ops.SemAcquireOp, ops.SemReleaseOp)):
        return op.sem.location
    if isinstance(op, ops.BarrierOp):
        return op.barrier.location
    if isinstance(op, ops.SpawnOp):
        return "thread:spawn"
    if isinstance(op, ops.JoinOp):
        return "thread:join"
    if isinstance(op, ops.YieldOp):
        return "sched:yield"
    if isinstance(op, ops.MallocOp):
        return f"heapsite:{op.site}"
    if isinstance(op, ops.FreeOp):
        return f"heap:{op.obj.name}" if op.obj is not None else "heap:<null>"
    if isinstance(op, (ops.HeapReadOp, ops.HeapWriteOp)):
        if op.obj is None:
            return "heap:<null>"
        return op.obj.location_of(op.field_name)
    raise ProgramError(f"unknown operation {op!r}")


class Executor:
    """Runs one program to completion under one scheduler policy."""

    def __init__(
        self,
        program: "Program",
        policy: "SchedulerPolicy",
        max_steps: int = DEFAULT_MAX_STEPS,
        sanitizers: Iterable["Sanitizer"] | None = None,
        guard: GuardConfig | None = None,
    ):
        self.program = program
        self.policy = policy
        self.max_steps = max_steps
        #: Online sanitizer stack, driven by :meth:`_record` as events land.
        self.sanitizers: tuple["Sanitizer", ...] = tuple(sanitizers or ())
        #: Optional runtime guardrails (watchdogs + livelock detection).
        self.guard = guard
        self._watchdog = Watchdog(guard) if guard is not None and guard.enabled else None
        self.api = Api()
        self.threads: list[ThreadState] = []
        self.trace = Trace()
        self.schedule: list[int] = []
        self._next_eid = 1
        #: location -> event id of last write (absent = initial pseudo-write 0).
        self._last_write: dict[str, int] = {}
        self._last_write_event: dict[str, Event] = {}

    # ------------------------------------------------------------------
    # Introspection used by scheduler policies
    # ------------------------------------------------------------------
    @property
    def step_index(self) -> int:
        return len(self.trace.events)

    def last_write_eid(self, location: str) -> int:
        """Event id of the last write to ``location`` (0 = initial value)."""
        return self._last_write.get(location, 0)

    def last_write_event(self, location: str) -> Event | None:
        """The last write event to ``location``, or None for the initial value."""
        return self._last_write_event.get(location)

    def thread_count(self) -> int:
        return len(self.threads)

    def live_thread_count(self) -> int:
        return sum(1 for t in self.threads if not t.finished)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Execute the program to completion, crash, deadlock or step bound."""
        main_gen = self.program.main(self.api)
        main_thread = ThreadState(0, "main", main_gen)
        self.threads.append(main_thread)
        for sanitizer in self.sanitizers:
            sanitizer.on_thread_start(0, None)
        truncated = False
        failure_frames: tuple[str, ...] = ()
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.start()
        self.policy.begin(self)
        try:
            self._advance(main_thread, None)
            while True:
                if self._all_done():
                    break
                if self.step_index >= self.max_steps:
                    truncated = True
                    break
                if watchdog is not None:
                    watchdog.check_step(self.step_index, self._frontier_frames)
                candidates = self.enabled_candidates()
                if not candidates:
                    blocked = tuple(t.tid for t in self.threads if not t.finished)
                    error = DeadlockDetected(blocked)
                    error.frames = self._frontier_frames()
                    raise error
                choice = self.policy.choose(candidates, self)
                if choice not in candidates:
                    raise SchedulerError(f"policy chose {choice}, not an enabled candidate")
                event = self._execute(choice)
                self.policy.notify(event, self)
                if watchdog is not None:
                    watchdog.after_event(event)
        except RuntimeViolation as violation:
            self.trace.outcome = violation.kind
            self.trace.failure = str(violation)
            failure_frames = tuple(violation.frames) or self._frontier_frames()
        reports: list["SanitizerReport"] = []
        for sanitizer in self.sanitizers:
            reports.extend(sanitizer.finish())
        result = ExecutionResult(
            trace=self.trace,
            schedule=self.schedule,
            steps=self.step_index,
            truncated=truncated,
            sanitizer_reports=reports,
            failure_frames=failure_frames,
            diverged=getattr(self.policy, "diverged", None),
        )
        counters = _global_counters()
        counters.executions += 1
        counters.steps += self.step_index
        counters.sanitizer_reports += len(reports)
        if result.timed_out:
            counters.timeouts += 1
        elif result.livelocked:
            counters.livelocks += 1
        self.policy.end(result, self)
        return result

    def _frontier_frames(self) -> tuple[str, ...]:
        """The pending program points of all live threads, sorted.

        This is the deterministic "stack" of a deadlocked, timed-out or
        crashing execution: where every unfinished thread currently stands.
        """
        return tuple(
            sorted(
                {
                    thread.pending_loc
                    for thread in self.threads
                    if not thread.finished and thread.pending_loc
                }
            )
        )

    def _all_done(self) -> bool:
        """Whether the execution has fully completed (hook for subclasses
        with extra pending work, e.g. unflushed TSO store buffers)."""
        return all(t.finished for t in self.threads)

    def enabled_candidates(self) -> list[Candidate]:
        """All runnable threads whose pending operation can execute now."""
        out = []
        for thread in self.threads:
            if thread.status is not ThreadStatus.RUNNABLE or thread.pending is None:
                continue
            if self._op_enabled(thread, thread.pending):
                candidate = thread.cached_candidate
                if candidate is None:
                    candidate = Candidate(
                        tid=thread.tid,
                        kind=thread.pending.kind,
                        location=_op_location(thread.pending),
                        loc=thread.pending_loc,
                    )
                    thread.cached_candidate = candidate
                out.append(candidate)
        return out

    def _op_enabled(self, thread: ThreadState, op: ops.Op) -> bool:
        if isinstance(op, ops.LockOp):
            return not op.mutex.held
        if isinstance(op, ops.JoinOp):
            return op.handle.finished
        if isinstance(op, ops.SemAcquireOp):
            return op.sem.count > 0
        return True

    # ------------------------------------------------------------------
    # Event execution
    # ------------------------------------------------------------------
    def _execute(self, choice: Candidate) -> Event:
        thread = self.threads[choice.tid]
        op = thread.pending
        if op is None:  # pragma: no cover - guarded by enabled_candidates
            raise SchedulerError(f"thread {choice.tid} has no pending op")
        eid = self._next_eid
        self._next_eid += 1
        rf: int | None = None
        value: Any = None
        resume: Any = None
        advance_now = True
        aux: Any = None
        crash: RuntimeViolation | None = None
        location = _op_location(op)
        try:
            rf, value, resume, advance_now, aux = self._apply(thread, op, eid, location)
        except RuntimeViolation as violation:
            if not violation.frames:
                # Operation-level oracles (null dereference, use-after-free)
                # fail at the executing op's program point.
                violation.frames = (thread.pending_loc,) if thread.pending_loc else ()
            crash = violation
        event = Event(
            eid=eid,
            tid=thread.tid,
            kind=op.kind,
            location=location,
            loc=thread.pending_loc,
            rf=rf,
            value=value,
            aux=aux,
        )
        self._record(event)
        thread.step_count += 1
        if self._writes(op, value):
            self._last_write[location] = eid
            self._last_write_event[location] = event
        if crash is not None:
            raise crash
        if advance_now:
            was_reacquire = thread.pending_is_reacquire
            thread.pending_is_reacquire = False
            self._advance(thread, None if was_reacquire else resume)
        return event

    def _record(self, event: Event) -> None:
        """Append ``event`` to the trace/schedule and stream it to sanitizers."""
        self.trace.events.append(event)
        self.schedule.append(event.tid)
        for sanitizer in self.sanitizers:
            sanitizer.on_event(event)

    def _writes(self, op: ops.Op, value: Any) -> bool:
        """Whether the executed op performed a write for reads-from purposes."""
        if op.category == "write":
            return True
        if isinstance(op, ops.CasOp):
            return bool(value)
        if isinstance(op, ops.TryLockOp):
            return bool(value)
        return op.category == "rmw"

    def _apply(
        self, thread: ThreadState, op: ops.Op, eid: int, location: str
    ) -> tuple[int | None, Any, Any, bool, Any]:
        """Perform the operation's effect.

        Returns ``(rf, recorded value, value to resume the generator with,
        advance_now, aux)``.  ``advance_now`` is False when the thread
        blocks as part of executing the op (condvar wait, non-final barrier
        arrival); ``aux`` is the cross-thread metadata recorded on the event
        (spawned/joined tid, woken waiters).
        """
        rf: int | None = None
        value: Any = None
        advance_now = True
        aux: Any = None
        if isinstance(op, ops.ReadOp):
            rf = self.last_write_eid(location)
            value = op.var.value
        elif isinstance(op, ops.WriteOp):
            op.var.value = op.value
            value = op.value
        elif isinstance(op, ops.RmwOp):
            rf = self.last_write_eid(location)
            value = op.var.value
            op.var.value = op.func(op.var.value)
        elif isinstance(op, ops.CasOp):
            rf = self.last_write_eid(location)
            value = op.var.value == op.expected
            if value:
                op.var.value = op.new
        elif isinstance(op, ops.LockOp):
            rf = self.last_write_eid(location)
            op.mutex.owner = thread.tid
        elif isinstance(op, ops.TryLockOp):
            rf = self.last_write_eid(location)
            value = not op.mutex.held
            if value:
                op.mutex.owner = thread.tid
        elif isinstance(op, ops.UnlockOp):
            self._unlock(thread, op.mutex)
        elif isinstance(op, ops.WaitOp):
            rf = self.last_write_eid(location)
            aux = op.mutex.location
            self._wait(thread, op)
            advance_now = False
        elif isinstance(op, ops.SignalOp):
            aux = self._wake(op.cond, count=1)
        elif isinstance(op, ops.BroadcastOp):
            aux = self._wake(op.cond, count=len(op.cond.waiters))
        elif isinstance(op, ops.SemAcquireOp):
            rf = self.last_write_eid(location)
            op.sem.count -= 1
        elif isinstance(op, ops.SemReleaseOp):
            op.sem.count += 1
        elif isinstance(op, ops.BarrierOp):
            rf = self.last_write_eid(location)
            advance_now = self._arrive(thread, op.barrier)
        elif isinstance(op, ops.SpawnOp):
            resume = self._spawn(op, thread.tid)
            return None, f"spawned T{resume.tid}", resume, True, resume.tid
        elif isinstance(op, ops.JoinOp):
            value = f"joined T{op.handle.tid}"
            aux = op.handle.tid
        elif isinstance(op, ops.YieldOp):
            pass
        elif isinstance(op, ops.MallocOp):
            obj = self.api.heap.malloc(op.site, op.fields)
            return None, f"malloc {obj.name}", obj, True, obj.name
        elif isinstance(op, ops.FreeOp):
            if op.obj is None:
                raise NullDereference("free(NULL-model) in program")
            self.api.heap.free(op.obj)
        elif isinstance(op, ops.HeapReadOp):
            if op.obj is None:
                raise NullDereference(f"read of field {op.field_name!r} through null pointer")
            rf = op.obj.field_writers.get(op.field_name, 0)
            value = op.obj.read_field(op.field_name)
        elif isinstance(op, ops.HeapWriteOp):
            if op.obj is None:
                raise NullDereference(f"write of field {op.field_name!r} through null pointer")
            op.obj.check_alive(f"write of field {op.field_name!r}")
            op.obj.write_field(op.field_name, op.value)
            op.obj.field_writers[op.field_name] = eid
            value = op.value
        else:  # pragma: no cover - exhaustive over the ops vocabulary
            raise ProgramError(f"unhandled operation {op!r}")
        return rf, value, value, advance_now, aux

    # ------------------------------------------------------------------
    # Synchronization helpers
    # ------------------------------------------------------------------
    def _unlock(self, thread: ThreadState, mutex: Mutex) -> None:
        if mutex.owner != thread.tid and mutex.error_checking:
            raise ProgramError(f"T{thread.tid} unlocked {mutex.name!r} held by {mutex.owner}")
        mutex.owner = None

    def _wait(self, thread: ThreadState, op: ops.WaitOp) -> None:
        if op.mutex.owner != thread.tid:
            raise ProgramError(f"T{thread.tid} waited on {op.cond.name!r} without holding the mutex")
        op.mutex.owner = None
        thread.status = ThreadStatus.WAITING_COND
        thread.wait_cond = op.cond
        thread.wait_mutex = op.mutex
        op.cond.waiters.append(thread.tid)

    def _wake(self, cond: CondVar, count: int) -> tuple[int, ...]:
        woken = []
        for _ in range(min(count, len(cond.waiters))):
            tid = cond.waiters.pop(0)
            waiter = self.threads[tid]
            waiter.status = ThreadStatus.RUNNABLE
            # The wakeup completes only after re-acquiring the mutex, modelled
            # as a synthetic lock op pending at the original wait location.
            waiter.pending = ops.LockOp(mutex=waiter.wait_mutex, loc=waiter.pending_loc)
            waiter.cached_candidate = None
            waiter.pending_is_reacquire = True
            waiter.wait_cond = None
            woken.append(tid)
        return tuple(woken)

    def _arrive(self, thread: ThreadState, barrier: Barrier) -> bool:
        if len(barrier.arrived) + 1 < barrier.parties:
            barrier.arrived.append(thread.tid)
            thread.status = ThreadStatus.WAITING_BARRIER
            thread.wait_barrier = barrier
            return False
        released = list(barrier.arrived)
        barrier.arrived.clear()
        barrier.generation += 1
        for tid in released:
            waiter = self.threads[tid]
            waiter.status = ThreadStatus.RUNNABLE
            waiter.wait_barrier = None
            self._advance(waiter, None)
        return True

    def _spawn(self, op: ops.SpawnOp, parent_tid: int) -> ThreadHandle:
        tid = len(self.threads)
        name = op.name or getattr(op.fn, "__name__", f"thread{tid}")
        try:
            gen = op.fn(self.api, *op.args)
        except TypeError as exc:
            # Not program misbehaviour mid-run but a malformed benchmark
            # (non-callable target, wrong arity): fail loudly, don't triage.
            raise ProgramError(f"cannot spawn {name!r}: {exc}") from exc
        if not hasattr(gen, "send"):
            raise ProgramError(f"spawned function {name!r} is not a generator")
        thread = ThreadState(tid, name, gen)
        self.threads.append(thread)
        for sanitizer in self.sanitizers:
            sanitizer.on_thread_start(tid, parent_tid)
        self._advance(thread, None)
        return ThreadHandle(thread)

    # ------------------------------------------------------------------
    # Generator advancement
    # ------------------------------------------------------------------
    def _advance(self, thread: ThreadState, value: Any) -> None:
        """Resume ``thread`` until its next yield (or completion).

        Runs thread-local code atomically; any :class:`RuntimeViolation`
        raised by program code (assertions, heap oracles triggered inside
        helpers) propagates to the main loop, which records the crash.
        Arbitrary exceptions escaping the generator are converted into
        :class:`UncaughtProgramException` — a structured crash with the
        program frames captured — so one misbehaving benchmark cannot abort
        a whole fuzzing campaign.  :class:`ProgramError` (malformed
        benchmark) and :class:`SchedulerError` (harness bug) still
        propagate: they are infrastructure failures, not findings.
        """
        try:
            op = thread.gen.send(value)
        except StopIteration:
            thread.status = ThreadStatus.FINISHED
            thread.pending = None
            thread.cached_candidate = None
            if self._watchdog is not None:
                self._watchdog.progress()
            for sanitizer in self.sanitizers:
                sanitizer.on_thread_exit(thread.tid)
            return
        except RuntimeViolation as violation:
            if not violation.frames:
                violation.frames = _frames_from_traceback(violation.__traceback__)
            raise
        except (ProgramError, SchedulerError):
            raise
        except Exception as exc:
            raise UncaughtProgramException(
                type(exc).__name__, str(exc), _frames_from_traceback(exc.__traceback__)
            ) from exc
        if not isinstance(op, ops.Op):
            raise ProgramError(f"thread {thread.name!r} yielded non-operation {op!r}")
        thread.pending = op
        thread.pending_loc = op.loc if op.loc is not None else _derive_loc(thread.gen)
        thread.cached_candidate = None


def run_program(
    program: "Program",
    policy: "SchedulerPolicy",
    max_steps: int = DEFAULT_MAX_STEPS,
    sanitizers: Iterable["Sanitizer"] | None = None,
    guard: GuardConfig | None = None,
) -> ExecutionResult:
    """Convenience wrapper: one execution of ``program`` under ``policy``."""
    return Executor(
        program, policy, max_steps=max_steps, sanitizers=sanitizers, guard=guard
    ).run()


#: Public alias: scheduler policies use this to inspect blocked threads'
#: pending operations (e.g. POS resets scores of racing pending events).
op_location = _op_location
