"""The serializing executor: one visible event per step, policy-chosen.

This module is the Python stand-in for the paper's ``libsched.so`` user-mode
scheduler (Section 4.1).  All threads of the program under test are advanced
by a single loop that, before every visible event, computes the set of
*enabled* threads and asks a pluggable :class:`SchedulerPolicy` which one
runs next.  Execution is fully deterministic given the policy's decisions,
which is what makes schedules replayable and the reads-from relation a
stable feedback signal.

Hot-path structure (PR 5): per-op-*type* dispatch tables replace the former
``isinstance`` chains — ``_apply`` is a table of bound per-op handlers built
once at init (subclasses override the ``_apply_*`` methods, see
:class:`~repro.runtime.tso.TsoExecutor`), enabledness checks live in a
module-level per-type table, each op's memory ``location`` is precomputed at
op construction, ``_derive_loc`` labels are memoized per ``(code object,
lineno)``, and abstract reads-from pairs are collected incrementally as
interned pair ids while events are recorded, so :meth:`Trace.rf_pairs` is a
memoized O(1) lookup after the run.  All of it is differentially pinned to
the pre-optimization engine by ``tests/test_engine_differential.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Iterable

from repro.core.events import AbstractEvent, Event, intern_abstract
from repro.core.trace import Trace, intern_rf_pair, rf_pair_hash
from repro.runtime import ops
from repro.runtime.api import Api
from repro.runtime.errors import (
    DeadlockDetected,
    NullDereference,
    ProgramError,
    RuntimeViolation,
    SchedulerError,
    UncaughtProgramException,
)
from repro.runtime.guard import GuardConfig, Watchdog
from repro.runtime.objects import Barrier, CondVar, Mutex
from repro.runtime.thread import ThreadHandle, ThreadState, ThreadStatus

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.online import Sanitizer, SanitizerReport
    from repro.runtime.program import Program
    from repro.schedulers.base import SchedulerPolicy

#: Default bound on events per execution, guarding against spin-heavy
#: schedules (e.g. CAS retry loops the policy keeps re-scheduling).
DEFAULT_MAX_STEPS = 20_000

#: Lazily bound process-global telemetry counters.  The import must be
#: deferred: ``repro.harness`` imports this module at package init, so a
#: top-level import of ``repro.harness.telemetry`` would be circular.
_COUNTERS = None


def _global_counters():
    global _COUNTERS
    if _COUNTERS is None:
        from repro.harness.telemetry import GLOBAL_COUNTERS

        _COUNTERS = GLOBAL_COUNTERS
    return _COUNTERS


@dataclass(frozen=True)
class Candidate:
    """One enabled thread together with the event it would execute next."""

    tid: int
    kind: str
    location: str
    loc: str

    @property
    def abstract(self) -> AbstractEvent:
        """The abstract event ``op(x)@l`` this candidate would produce."""
        cached = self.__dict__.get("_abstract")
        if cached is None:
            cached = intern_abstract(self.kind, self.location, self.loc)
            object.__setattr__(self, "_abstract", cached)
        return cached

    def __str__(self) -> str:
        return f"T{self.tid}:{self.kind}({self.location})@{self.loc}"


@dataclass
class ExecutionResult:
    """Outcome of one complete execution under a scheduler policy."""

    trace: Trace
    #: Thread ids in the order their events executed (the concrete schedule).
    schedule: list[int]
    steps: int
    #: True when the step bound was hit before all threads finished.
    truncated: bool = False
    #: Findings of the execution's online sanitizer stack (empty when none
    #: was attached).
    sanitizer_reports: list["SanitizerReport"] = field(default_factory=list)
    #: Stable ``function:line`` frames of the failure (empty when the
    #: execution completed normally); the triage bucket's frame component.
    failure_frames: tuple[str, ...] = ()
    #: First step at which a replaying policy could not follow its recorded
    #: schedule (None = exact replay, or the policy does not replay at all).
    #: Surfaced here so callers never reach into the policy object.
    diverged: int | None = None

    @property
    def crashed(self) -> bool:
        return self.trace.crashed

    @property
    def outcome(self) -> str | None:
        return self.trace.outcome

    @property
    def timed_out(self) -> bool:
        """True when a guard watchdog (step budget / wall clock) tripped."""
        return self.trace.outcome == "timeout"

    @property
    def livelocked(self) -> bool:
        """True when the guard's livelock detector tripped."""
        return self.trace.outcome == "livelock"


def _innermost_frame(gen: Generator) -> Any:
    """Follow ``yield from`` delegation to the innermost suspended frame."""
    inner = gen
    while getattr(inner, "gi_yieldfrom", None) is not None and hasattr(inner.gi_yieldfrom, "gi_frame"):
        inner = inner.gi_yieldfrom
    return getattr(inner, "gi_frame", None), getattr(inner, "gi_code", None)


#: The runtime package directory; traceback frames inside it are executor
#: machinery, not program code, and are dropped from captured failure frames.
_RUNTIME_DIR = os.path.dirname(os.path.abspath(__file__))


#: filename -> whether it lives in the runtime package (frame filter memo).
_RUNTIME_FILE: dict[str, bool] = {}


def _frames_from_traceback(tb) -> tuple[str, ...]:
    """Stable ``function:line`` frames of program code in a traceback.

    The labels match :func:`_derive_loc` (and thus event ``loc`` fields), so
    triage can hash exception frames and event frontiers interchangeably.
    Walks the raw traceback directly — same ``name:lineno`` labels as
    ``traceback.extract_tb`` without its linecache / code-position work,
    which dominated crash-heavy executions.
    """
    frames = []
    while tb is not None:
        code = tb.tb_frame.f_code
        filename = code.co_filename
        is_runtime = _RUNTIME_FILE.get(filename)
        if is_runtime is None:
            is_runtime = _RUNTIME_FILE[filename] = (
                os.path.dirname(os.path.abspath(filename)) == _RUNTIME_DIR
            )
        if not is_runtime:
            frames.append(f"{code.co_name}:{tb.tb_lineno}")
        tb = tb.tb_next
    return tuple(frames)


#: (code object, lineno) -> "name:lineno" label memo.  Process-global: the
#: key space is bounded by program text (distinct yield points), and reusing
#: labels across executions also keeps label strings shared.
_LOC_LABELS: dict[tuple[Any, int], str] = {}


def _derive_loc(gen: Generator) -> str:
    """A stable ``function:line`` label for the yield that produced an op.

    This plays the role of the source-code location ``l`` in abstract events:
    identical program points in different threads (or different executions)
    receive identical labels.  Labels are memoized per (code object, lineno).
    """
    inner = gen
    while True:
        delegate = getattr(inner, "gi_yieldfrom", None)
        if delegate is None or not hasattr(delegate, "gi_frame"):
            break
        inner = delegate
    frame = getattr(inner, "gi_frame", None)
    if frame is not None:
        key = (frame.f_code, frame.f_lineno)
        label = _LOC_LABELS.get(key)
        if label is None:
            label = _LOC_LABELS[key] = f"{frame.f_code.co_name}:{frame.f_lineno}"
        return label
    code = getattr(inner, "gi_code", None)
    if code is not None:  # pragma: no cover - suspended generators have frames
        return f"{code.co_name}:?"
    return "?:?"


def _op_location(op: ops.Op) -> str:
    """The memory location ``x`` an operation acts on.

    Locations are precomputed at op construction (see
    :meth:`repro.runtime.ops.Op.__post_init__`); this accessor remains as
    the stable entry point for scheduler policies.
    """
    return op.location


#: Per-op-type enabledness checks; op types absent from the table are always
#: enabled.  Keyed on the concrete class (ops are never subclassed).
_ENABLED_CHECKS = {
    ops.LockOp: lambda op: not op.mutex.held,
    ops.JoinOp: lambda op: op.handle.finished,
    ops.SemAcquireOp: lambda op: op.sem.count > 0,
}

#: Op type -> name of the Executor method applying it.  Bound per instance
#: at init (so subclass overrides of individual handlers are honoured).
_APPLY_METHODS: dict[type[ops.Op], str] = {
    ops.ReadOp: "_apply_read",
    ops.WriteOp: "_apply_write",
    ops.RmwOp: "_apply_rmw",
    ops.CasOp: "_apply_cas",
    ops.LockOp: "_apply_lock",
    ops.TryLockOp: "_apply_trylock",
    ops.UnlockOp: "_apply_unlock",
    ops.WaitOp: "_apply_wait",
    ops.SignalOp: "_apply_signal",
    ops.BroadcastOp: "_apply_broadcast",
    ops.SemAcquireOp: "_apply_sem_acquire",
    ops.TrySemAcquireOp: "_apply_try_sem_acquire",
    ops.SemReleaseOp: "_apply_sem_release",
    ops.BarrierOp: "_apply_barrier",
    ops.SpawnOp: "_apply_spawn",
    ops.JoinOp: "_apply_join",
    ops.YieldOp: "_apply_yield",
    ops.MallocOp: "_apply_malloc",
    ops.FreeOp: "_apply_free",
    ops.HeapReadOp: "_apply_heap_read",
    ops.HeapWriteOp: "_apply_heap_write",
}


class Executor:
    """Runs one program to completion under one scheduler policy."""

    def __init__(
        self,
        program: "Program",
        policy: "SchedulerPolicy",
        max_steps: int = DEFAULT_MAX_STEPS,
        sanitizers: Iterable["Sanitizer"] | None = None,
        guard: GuardConfig | None = None,
    ):
        self.program = program
        self.policy = policy
        self.max_steps = max_steps
        #: Online sanitizer stack, driven by :meth:`_record` as events land.
        self.sanitizers: tuple["Sanitizer", ...] = tuple(sanitizers or ())
        #: Optional runtime guardrails (watchdogs + livelock detection).
        self.guard = guard
        self._watchdog = Watchdog(guard) if guard is not None and guard.enabled else None
        self.api = Api()
        self.threads: list[ThreadState] = []
        self.trace = Trace()
        self.schedule: list[int] = []
        self._next_eid = 1
        #: location -> event id of last write (absent = initial pseudo-write 0).
        self._last_write: dict[str, int] = {}
        self._last_write_event: dict[str, Event] = {}
        #: Count of unfinished threads (maintained by _advance/_spawn).
        self._live_threads = 0
        #: Threads scanned by enabled_candidates: ``self.threads`` minus
        #: finished ones, pruned lazily (tid order preserved by removal).
        self._scan_threads: list[ThreadState] = []
        self._scan_dirty = False
        #: Interned abstract rf pair ids seen so far, plus their running
        #: order-insensitive XOR hash; seeds the trace's rf memo after run().
        self._rf_pair_ids: set[int] = set()
        self._rf_sig_hash = 0
        #: Reused enabled-candidates buffer.  The returned list is only
        #: valid until the next enabled_candidates() call; every consumer
        #: (main loop, policies, exploration logs) copies what it retains.
        self._candidates_buf: list[Candidate] = []
        #: Prebound sanitizer on_event hooks (hot streaming path).
        self._san_on_event = tuple(s.on_event for s in self.sanitizers)
        #: Per-op-type apply dispatch table: unbound handler functions,
        #: resolved once per concrete Executor class (so subclass overrides
        #: of individual ``_apply_*`` methods are honoured) and shared by
        #: all instances — executor construction itself is a hot path for
        #: short crashing programs.
        cls = type(self)
        table = cls.__dict__.get("_apply_table")
        if table is None:
            table = {op_type: getattr(cls, name) for op_type, name in _APPLY_METHODS.items()}
            cls._apply_table = table
        self._apply_table = table

    # ------------------------------------------------------------------
    # Introspection used by scheduler policies
    # ------------------------------------------------------------------
    @property
    def step_index(self) -> int:
        return len(self.trace.events)

    def last_write_eid(self, location: str) -> int:
        """Event id of the last write to ``location`` (0 = initial value)."""
        return self._last_write.get(location, 0)

    def last_write_event(self, location: str) -> Event | None:
        """The last write event to ``location``, or None for the initial value."""
        return self._last_write_event.get(location)

    def thread_count(self) -> int:
        return len(self.threads)

    def live_thread_count(self) -> int:
        return self._live_threads

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Execute the program to completion, crash, deadlock or step bound."""
        main_gen = self.program.main(self.api)
        main_thread = ThreadState(0, "main", main_gen)
        self.threads.append(main_thread)
        self._scan_threads.append(main_thread)
        self._live_threads += 1
        for sanitizer in self.sanitizers:
            sanitizer.on_thread_start(0, None)
        truncated = False
        failure_frames: tuple[str, ...] = ()
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.start()
        policy = self.policy
        policy.begin(self)
        # Hoist per-step lookups out of the loop: these attributes are
        # stable for the lifetime of the run.
        choose = policy.choose
        notify = policy.notify
        execute = self._execute
        enabled_candidates = self.enabled_candidates
        events = self.trace.events
        max_steps = self.max_steps
        try:
            self._advance(main_thread, None)
            while not self._all_done():
                if len(events) >= max_steps:
                    truncated = True
                    break
                if watchdog is not None:
                    watchdog.check_step(len(events), self._frontier_frames)
                candidates = enabled_candidates()
                if not candidates:
                    blocked = tuple(t.tid for t in self.threads if not t.finished)
                    error = DeadlockDetected(blocked)
                    error.frames = self._frontier_frames()
                    raise error
                choice = choose(candidates, self)
                if choice not in candidates:
                    raise SchedulerError(f"policy chose {choice}, not an enabled candidate")
                event = execute(choice)
                notify(event, self)
                if watchdog is not None:
                    watchdog.after_event(event)
        except RuntimeViolation as violation:
            self.trace.outcome = violation.kind
            self.trace.failure = str(violation)
            failure_frames = tuple(violation.frames) or self._frontier_frames()
        finally:
            # Regardless of outcome, close every thread generator and run
            # execution-scoped cleanups (the real-Python substrate registers
            # one to abort parked OS threads and restore stdlib patches).
            # Truncated or crashed executions leave generators suspended;
            # without this they would leak resources across the thousands of
            # executions of a fuzzing campaign.
            self._close_threads()
            self.api.run_cleanups()
        # Hand the incrementally collected rf state to the trace, making
        # rf_pairs()/rf_signature() O(1) memoized lookups for this trace.
        self.trace.seed_rf_cache(self._rf_pair_ids, self._rf_sig_hash)
        reports: list["SanitizerReport"] = []
        for sanitizer in self.sanitizers:
            reports.extend(sanitizer.finish())
        result = ExecutionResult(
            trace=self.trace,
            schedule=self.schedule,
            steps=self.step_index,
            truncated=truncated,
            sanitizer_reports=reports,
            failure_frames=failure_frames,
            diverged=getattr(self.policy, "diverged", None),
        )
        counters = _global_counters()
        counters.executions += 1
        counters.steps += self.step_index
        counters.sanitizer_reports += len(reports)
        if result.timed_out:
            counters.timeouts += 1
        elif result.livelocked:
            counters.livelocks += 1
        self.policy.end(result, self)
        return result

    def _close_threads(self) -> None:
        """Close every thread generator, main first (execution teardown).

        Finished generators make this a cheap no-op; suspended ones receive
        ``GeneratorExit`` at their yield point.  Exceptions raised by
        teardown code are swallowed: the execution's outcome is already
        decided and a noisy ``finally`` in program code must not abort the
        campaign.
        """
        for thread in self.threads:
            close = getattr(thread.gen, "close", None)
            if close is None:
                continue
            try:
                close()
            except BaseException:  # noqa: BLE001 - teardown must not raise
                pass

    def _frontier_frames(self) -> tuple[str, ...]:
        """The pending program points of all live threads, sorted.

        This is the deterministic "stack" of a deadlocked, timed-out or
        crashing execution: where every unfinished thread currently stands.
        """
        return tuple(
            sorted(
                {
                    thread.pending_loc
                    for thread in self.threads
                    if not thread.finished and thread.pending_loc
                }
            )
        )

    def _all_done(self) -> bool:
        """Whether the execution has fully completed (hook for subclasses
        with extra pending work, e.g. unflushed TSO store buffers)."""
        return self._live_threads == 0

    def enabled_candidates(self) -> list[Candidate]:
        """All runnable threads whose pending operation can execute now.

        Returns a preallocated buffer reused across calls: the list is only
        valid until the next call (consumers that retain candidates copy
        them, which every in-tree policy and explorer already does).
        """
        if self._scan_dirty:
            # Prune finished threads (irreversible state) from the scan
            # list; removal keeps the list tid-ordered, preserving the
            # candidate order policies observe.
            self._scan_threads = [t for t in self._scan_threads if t.status is not ThreadStatus.FINISHED]
            self._scan_dirty = False
        out = self._candidates_buf
        out.clear()
        append = out.append
        checks = _ENABLED_CHECKS
        runnable = ThreadStatus.RUNNABLE
        for thread in self._scan_threads:
            if thread.status is not runnable:
                continue
            op = thread.pending
            if op is None:
                continue
            if op.may_block:
                check = checks.get(op.__class__)
                if check is not None and not check(op):
                    continue
            candidate = thread.cached_candidate
            if candidate is None:
                candidate = Candidate(thread.tid, op.kind, op.location, thread.pending_loc)
                thread.cached_candidate = candidate
            append(candidate)
        return out

    def _op_enabled(self, thread: ThreadState, op: ops.Op) -> bool:
        check = _ENABLED_CHECKS.get(op.__class__)
        return True if check is None else check(op)

    # ------------------------------------------------------------------
    # Event execution
    # ------------------------------------------------------------------
    def _execute(self, choice: Candidate) -> Event:
        thread = self.threads[choice.tid]
        op = thread.pending
        if op is None:  # pragma: no cover - guarded by enabled_candidates
            raise SchedulerError(f"thread {choice.tid} has no pending op")
        eid = self._next_eid
        self._next_eid = eid + 1
        location = op.location
        crash: RuntimeViolation | None = None
        handler = self._apply_table.get(op.__class__)
        if handler is None:  # pragma: no cover - exhaustive over the ops vocabulary
            raise ProgramError(f"unhandled operation {op!r}")
        try:
            rf, value, resume, advance_now, aux = handler(self, thread, op, eid, location)
        except RuntimeViolation as violation:
            if not violation.frames:
                # Operation-level oracles (null dereference, use-after-free)
                # fail at the executing op's program point.
                violation.frames = (thread.pending_loc,) if thread.pending_loc else ()
            crash = violation
            rf = None
            value = None
            resume = None
            advance_now = True
            aux = None
        event = Event(eid, thread.tid, op.kind, location, thread.pending_loc, rf, value, aux)
        self._record(event)
        if rf is not None:
            # Incremental rf collection: the writer of a recorded read is
            # itself a recorded event at (dense) index rf - 1.
            writer = None if rf == 0 else self.trace.events[rf - 1].abstract
            pid = intern_rf_pair(writer, event.abstract)
            pair_ids = self._rf_pair_ids
            if pid not in pair_ids:
                pair_ids.add(pid)
                self._rf_sig_hash ^= rf_pair_hash(pid)
        thread.step_count += 1
        if self._writes(op, value):
            self._last_write[location] = eid
            self._last_write_event[location] = event
        if crash is not None:
            raise crash
        if advance_now:
            was_reacquire = thread.pending_is_reacquire
            thread.pending_is_reacquire = False
            self._advance(thread, None if was_reacquire else resume)
        return event

    def _record(self, event: Event) -> None:
        """Append ``event`` to the trace/schedule and stream it to sanitizers."""
        self.trace.events.append(event)
        self.schedule.append(event.tid)
        hooks = self._san_on_event
        if hooks:
            for hook in hooks:
                hook(event)

    def _writes(self, op: ops.Op, value: Any) -> bool:
        """Whether the executed op performed a write for reads-from purposes."""
        writes = op.writes
        if writes is None:
            # cas/trylock: writes only when the operation succeeded.
            return bool(value)
        return writes

    def _apply(
        self, thread: ThreadState, op: ops.Op, eid: int, location: str
    ) -> tuple[int | None, Any, Any, bool, Any]:
        """Perform the operation's effect (table-dispatched).

        Returns ``(rf, recorded value, value to resume the generator with,
        advance_now, aux)``.  ``advance_now`` is False when the thread
        blocks as part of executing the op (condvar wait, non-final barrier
        arrival); ``aux`` is the cross-thread metadata recorded on the event
        (spawned/joined tid, woken waiters).
        """
        handler = self._apply_table.get(op.__class__)
        if handler is None:
            raise ProgramError(f"unhandled operation {op!r}")
        return handler(self, thread, op, eid, location)

    # -- per-op-type apply handlers --------------------------------------
    def _apply_read(self, thread: ThreadState, op: ops.ReadOp, eid: int, location: str):
        value = op.var.value
        return self._last_write.get(location, 0), value, value, True, None

    def _apply_write(self, thread: ThreadState, op: ops.WriteOp, eid: int, location: str):
        value = op.value
        op.var.value = value
        return None, value, value, True, None

    def _apply_rmw(self, thread: ThreadState, op: ops.RmwOp, eid: int, location: str):
        var = op.var
        old = var.value
        var.value = op.func(old)
        return self._last_write.get(location, 0), old, old, True, None

    def _apply_cas(self, thread: ThreadState, op: ops.CasOp, eid: int, location: str):
        var = op.var
        success = var.value == op.expected
        if success:
            var.value = op.new
        return self._last_write.get(location, 0), success, success, True, None

    def _apply_lock(self, thread: ThreadState, op: ops.LockOp, eid: int, location: str):
        op.mutex.owner = thread.tid
        return self._last_write.get(location, 0), None, None, True, None

    def _apply_trylock(self, thread: ThreadState, op: ops.TryLockOp, eid: int, location: str):
        mutex = op.mutex
        success = not mutex.held
        if success:
            mutex.owner = thread.tid
        return self._last_write.get(location, 0), success, success, True, None

    def _apply_unlock(self, thread: ThreadState, op: ops.UnlockOp, eid: int, location: str):
        self._unlock(thread, op.mutex)
        return None, None, None, True, None

    def _apply_wait(self, thread: ThreadState, op: ops.WaitOp, eid: int, location: str):
        rf = self._last_write.get(location, 0)
        aux = op.mutex.location
        self._wait(thread, op)
        return rf, None, None, False, aux

    def _apply_signal(self, thread: ThreadState, op: ops.SignalOp, eid: int, location: str):
        return None, None, None, True, self._wake(op.cond, 1)

    def _apply_broadcast(self, thread: ThreadState, op: ops.BroadcastOp, eid: int, location: str):
        cond = op.cond
        return None, None, None, True, self._wake(cond, len(cond.waiters))

    def _apply_sem_acquire(self, thread: ThreadState, op: ops.SemAcquireOp, eid: int, location: str):
        rf = self._last_write.get(location, 0)
        op.sem.count -= 1
        return rf, None, None, True, None

    def _apply_try_sem_acquire(self, thread: ThreadState, op: ops.TrySemAcquireOp, eid: int, location: str):
        sem = op.sem
        success = sem.count > 0
        if success:
            sem.count -= 1
        return self._last_write.get(location, 0), success, success, True, None

    def _apply_sem_release(self, thread: ThreadState, op: ops.SemReleaseOp, eid: int, location: str):
        op.sem.count += 1
        return None, None, None, True, None

    def _apply_barrier(self, thread: ThreadState, op: ops.BarrierOp, eid: int, location: str):
        rf = self._last_write.get(location, 0)
        return rf, None, None, self._arrive(thread, op.barrier), None

    def _apply_spawn(self, thread: ThreadState, op: ops.SpawnOp, eid: int, location: str):
        handle = self._spawn(op, thread.tid)
        return None, f"spawned T{handle.tid}", handle, True, handle.tid

    def _apply_join(self, thread: ThreadState, op: ops.JoinOp, eid: int, location: str):
        value = f"joined T{op.handle.tid}"
        return None, value, value, True, op.handle.tid

    def _apply_yield(self, thread: ThreadState, op: ops.YieldOp, eid: int, location: str):
        return None, None, None, True, None

    def _apply_malloc(self, thread: ThreadState, op: ops.MallocOp, eid: int, location: str):
        obj = self.api.heap.malloc(op.site, op.fields)
        return None, f"malloc {obj.name}", obj, True, obj.name

    def _apply_free(self, thread: ThreadState, op: ops.FreeOp, eid: int, location: str):
        if op.obj is None:
            raise NullDereference("free(NULL-model) in program")
        self.api.heap.free(op.obj)
        return None, None, None, True, None

    def _apply_heap_read(self, thread: ThreadState, op: ops.HeapReadOp, eid: int, location: str):
        obj = op.obj
        if obj is None:
            raise NullDereference(f"read of field {op.field_name!r} through null pointer")
        rf = obj.field_writers.get(op.field_name, 0)
        value = obj.read_field(op.field_name)
        return rf, value, value, True, None

    def _apply_heap_write(self, thread: ThreadState, op: ops.HeapWriteOp, eid: int, location: str):
        obj = op.obj
        if obj is None:
            raise NullDereference(f"write of field {op.field_name!r} through null pointer")
        name = op.field_name
        obj.check_alive(f"write of field {name!r}")
        obj.write_field(name, op.value)
        obj.field_writers[name] = eid
        value = op.value
        return None, value, value, True, None

    # ------------------------------------------------------------------
    # Synchronization helpers
    # ------------------------------------------------------------------
    def _unlock(self, thread: ThreadState, mutex: Mutex) -> None:
        if mutex.owner != thread.tid and mutex.error_checking:
            raise ProgramError(f"T{thread.tid} unlocked {mutex.name!r} held by {mutex.owner}")
        mutex.owner = None

    def _wait(self, thread: ThreadState, op: ops.WaitOp) -> None:
        if op.mutex.owner != thread.tid:
            raise ProgramError(f"T{thread.tid} waited on {op.cond.name!r} without holding the mutex")
        op.mutex.owner = None
        thread.status = ThreadStatus.WAITING_COND
        thread.wait_cond = op.cond
        thread.wait_mutex = op.mutex
        op.cond.waiters.append(thread.tid)

    def _wake(self, cond: CondVar, count: int) -> tuple[int, ...]:
        woken = []
        waiters = cond.waiters
        for _ in range(min(count, len(waiters))):
            tid = waiters.popleft()
            waiter = self.threads[tid]
            waiter.status = ThreadStatus.RUNNABLE
            # The wakeup completes only after re-acquiring the mutex, modelled
            # as a synthetic lock op pending at the original wait location.
            waiter.pending = ops.LockOp(mutex=waiter.wait_mutex, loc=waiter.pending_loc)
            waiter.cached_candidate = None
            waiter.pending_is_reacquire = True
            waiter.wait_cond = None
            woken.append(tid)
        return tuple(woken)

    def _arrive(self, thread: ThreadState, barrier: Barrier) -> bool:
        if len(barrier.arrived) + 1 < barrier.parties:
            barrier.arrived.append(thread.tid)
            thread.status = ThreadStatus.WAITING_BARRIER
            thread.wait_barrier = barrier
            return False
        released = list(barrier.arrived)
        barrier.arrived.clear()
        barrier.generation += 1
        for tid in released:
            waiter = self.threads[tid]
            waiter.status = ThreadStatus.RUNNABLE
            waiter.wait_barrier = None
            self._advance(waiter, None)
        return True

    def _spawn(self, op: ops.SpawnOp, parent_tid: int) -> ThreadHandle:
        tid = len(self.threads)
        name = op.name or getattr(op.fn, "__name__", f"thread{tid}")
        try:
            gen = op.fn(self.api, *op.args)
        except TypeError as exc:
            # Not program misbehaviour mid-run but a malformed benchmark
            # (non-callable target, wrong arity): fail loudly, don't triage.
            raise ProgramError(f"cannot spawn {name!r}: {exc}") from exc
        if not hasattr(gen, "send"):
            raise ProgramError(f"spawned function {name!r} is not a generator")
        thread = ThreadState(tid, name, gen)
        self.threads.append(thread)
        self._scan_threads.append(thread)
        self._live_threads += 1
        for sanitizer in self.sanitizers:
            sanitizer.on_thread_start(tid, parent_tid)
        self._advance(thread, None)
        return ThreadHandle(thread)

    # ------------------------------------------------------------------
    # Generator advancement
    # ------------------------------------------------------------------
    def _advance(self, thread: ThreadState, value: Any) -> None:
        """Resume ``thread`` until its next yield (or completion).

        Runs thread-local code atomically; any :class:`RuntimeViolation`
        raised by program code (assertions, heap oracles triggered inside
        helpers) propagates to the main loop, which records the crash.
        Arbitrary exceptions escaping the generator are converted into
        :class:`UncaughtProgramException` — a structured crash with the
        program frames captured — so one misbehaving benchmark cannot abort
        a whole fuzzing campaign.  :class:`ProgramError` (malformed
        benchmark) and :class:`SchedulerError` (harness bug) still
        propagate: they are infrastructure failures, not findings.
        """
        try:
            op = thread.gen.send(value)
        except StopIteration:
            thread.status = ThreadStatus.FINISHED
            thread.pending = None
            thread.cached_candidate = None
            self._live_threads -= 1
            self._scan_dirty = True
            if self._watchdog is not None:
                self._watchdog.progress()
            for sanitizer in self.sanitizers:
                sanitizer.on_thread_exit(thread.tid)
            return
        except RuntimeViolation as violation:
            if not violation.frames:
                violation.frames = _frames_from_traceback(violation.__traceback__)
            raise
        except (ProgramError, SchedulerError):
            raise
        except Exception as exc:
            raise UncaughtProgramException(
                type(exc).__name__, str(exc), _frames_from_traceback(exc.__traceback__)
            ) from exc
        if not isinstance(op, ops.Op):
            raise ProgramError(f"thread {thread.name!r} yielded non-operation {op!r}")
        thread.pending = op
        loc = op.loc
        thread.pending_loc = loc if loc is not None else _derive_loc(thread.gen)
        thread.cached_candidate = None


def run_program(
    program: "Program",
    policy: "SchedulerPolicy",
    max_steps: int = DEFAULT_MAX_STEPS,
    sanitizers: Iterable["Sanitizer"] | None = None,
    guard: GuardConfig | None = None,
) -> ExecutionResult:
    """Convenience wrapper: one execution of ``program`` under ``policy``."""
    return Executor(
        program, policy, max_steps=max_steps, sanitizers=sanitizers, guard=guard
    ).run()


#: Public alias: scheduler policies use this to inspect blocked threads'
#: pending operations (e.g. POS resets scores of racing pending events).
op_location = _op_location
