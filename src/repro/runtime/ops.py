"""Operation vocabulary yielded by program threads.

A program thread is a generator that ``yield``\\ s exactly one :class:`Op`
per visible event; the executor performs the operation, records an event and
resumes the generator with the operation's result (for reads, the value
read).  This is the cooperative-yield equivalent of the paper's per-event
``on_event()`` instrumentation hook (Section 4.1): every yield is a
serialization point at which the scheduler policy chooses the next thread.

Each operation carries:

* ``category`` — how the event participates in the reads-from relation:
  ``"read"`` events consume a value, ``"write"`` events produce one, and
  ``"rmw"`` events (lock acquire, atomic fetch-and-op, semaphore ops) do
  both.  ``"other"`` events (spawn, join, yield) are ordered but carry no
  reads-from edge.
* ``loc`` — an optional explicit code-location label; when omitted the
  executor derives a stable ``function:line`` label from the generator frame,
  playing the role of the source location ``l`` in abstract events
  ``op(x)@l``.
* ``location`` — the memory location ``x`` the operation acts on, computed
  once at construction (``__post_init__``) instead of once per executor
  enabled-set scan.  Derived purely from immutable object names, so the
  value is identical no matter when it is read.
* ``writes`` — whether executing the op performs a write for reads-from
  purposes: ``True``/``False`` when statically known, ``None`` when it
  depends on the runtime result (``cas``/``trylock`` succeed or fail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.objects import Barrier, CondVar, HeapObject, Mutex, Semaphore, SharedVar
    from repro.runtime.thread import ThreadHandle


@dataclass
class Op:
    """Base class for all operations; never yielded directly."""

    loc: str | None = field(default=None, kw_only=True)

    #: Operation kind name used in events and abstract events.
    kind = "op"
    #: Reads-from participation: "read", "write", "rmw" or "other".
    category = "other"
    #: True when executing this operation may block the thread.
    may_block = False
    #: Reads-from write participation: True/False, or None when it depends
    #: on the runtime value (cas/trylock success).
    writes = False

    def __post_init__(self) -> None:
        # Computed once here; the executor's hot paths (enabled-set scans,
        # event construction, POS race resets) read the attribute directly.
        self.location = self._location()

    def _location(self) -> str:
        return "op:unknown"


@dataclass
class ReadOp(Op):
    """Read a shared variable; the yield expression evaluates to the value."""

    var: "SharedVar" = None  # type: ignore[assignment]

    kind = "r"
    category = "read"

    def _location(self) -> str:
        return self.var.location


@dataclass
class WriteOp(Op):
    """Write ``value`` to a shared variable."""

    var: "SharedVar" = None  # type: ignore[assignment]
    value: Any = None

    kind = "w"
    category = "write"
    writes = True

    def _location(self) -> str:
        return self.var.location


@dataclass
class RmwOp(Op):
    """Atomic read-modify-write: ``var.value = func(old)``; yields ``old``.

    Models atomic increments, compare-and-swap and similar primitives used
    heavily by the SafeStack and work-stealing-queue benchmarks.
    """

    var: "SharedVar" = None  # type: ignore[assignment]
    func: Callable[[Any], Any] = None  # type: ignore[assignment]

    kind = "rmw"
    category = "rmw"
    writes = True

    def _location(self) -> str:
        return self.var.location


@dataclass
class CasOp(Op):
    """Compare-and-swap: if ``var == expected`` set ``new``; yields success bool."""

    var: "SharedVar" = None  # type: ignore[assignment]
    expected: Any = None
    new: Any = None

    kind = "cas"
    category = "rmw"
    writes = None  # depends on whether the CAS succeeded

    def _location(self) -> str:
        return self.var.location


@dataclass
class LockOp(Op):
    """Acquire a mutex; blocks while another thread holds it."""

    mutex: "Mutex" = None  # type: ignore[assignment]

    kind = "lock"
    category = "rmw"
    may_block = True
    writes = True

    def _location(self) -> str:
        return self.mutex.location


@dataclass
class TryLockOp(Op):
    """Attempt to acquire a mutex without blocking; yields success bool."""

    mutex: "Mutex" = None  # type: ignore[assignment]

    kind = "trylock"
    category = "rmw"
    writes = None  # depends on whether the acquisition succeeded

    def _location(self) -> str:
        return self.mutex.location


@dataclass
class UnlockOp(Op):
    """Release a mutex held by the calling thread."""

    mutex: "Mutex" = None  # type: ignore[assignment]

    kind = "unlock"
    category = "write"
    writes = True

    def _location(self) -> str:
        return self.mutex.location


@dataclass
class WaitOp(Op):
    """Condition-variable wait: atomically release ``mutex`` and block.

    On wakeup (via signal/broadcast) the thread re-acquires ``mutex`` before
    the yield returns, exactly like ``pthread_cond_wait``.
    """

    cond: "CondVar" = None  # type: ignore[assignment]
    mutex: "Mutex" = None  # type: ignore[assignment]

    kind = "wait"
    category = "rmw"
    may_block = True
    writes = True

    def _location(self) -> str:
        return self.cond.location


@dataclass
class SignalOp(Op):
    """Wake one waiter (FIFO) of a condition variable, if any."""

    cond: "CondVar" = None  # type: ignore[assignment]

    kind = "signal"
    category = "write"
    writes = True

    def _location(self) -> str:
        return self.cond.location


@dataclass
class BroadcastOp(Op):
    """Wake every waiter of a condition variable."""

    cond: "CondVar" = None  # type: ignore[assignment]

    kind = "broadcast"
    category = "write"
    writes = True

    def _location(self) -> str:
        return self.cond.location


@dataclass
class SemAcquireOp(Op):
    """Decrement a semaphore; blocks while the count is zero."""

    sem: "Semaphore" = None  # type: ignore[assignment]

    kind = "sem_acquire"
    category = "rmw"
    may_block = True
    writes = True

    def _location(self) -> str:
        return self.sem.location


@dataclass
class TrySemAcquireOp(Op):
    """Attempt to decrement a semaphore without blocking; yields success bool.

    The non-blocking analogue of :class:`SemAcquireOp`, mirroring
    ``threading.Semaphore.acquire(blocking=False)`` (used by the real-Python
    substrate to model e.g. ``ThreadPoolExecutor``'s idle-worker probe).
    """

    sem: "Semaphore" = None  # type: ignore[assignment]

    kind = "trysem"
    category = "rmw"
    writes = None  # depends on whether the acquisition succeeded

    def _location(self) -> str:
        return self.sem.location


@dataclass
class SemReleaseOp(Op):
    """Increment a semaphore, enabling one blocked acquirer."""

    sem: "Semaphore" = None  # type: ignore[assignment]

    kind = "sem_release"
    category = "write"
    writes = True

    def _location(self) -> str:
        return self.sem.location


@dataclass
class BarrierOp(Op):
    """Arrive at a barrier; blocks until all parties arrive."""

    barrier: "Barrier" = None  # type: ignore[assignment]

    kind = "barrier"
    category = "rmw"
    may_block = True
    writes = True

    def _location(self) -> str:
        return self.barrier.location


@dataclass
class SpawnOp(Op):
    """Create a new thread running ``fn(api, *args)``; yields a ThreadHandle."""

    fn: Callable[..., Any] = None  # type: ignore[assignment]
    args: tuple = ()
    name: str | None = None

    kind = "spawn"
    category = "other"

    def _location(self) -> str:
        return "thread:spawn"


@dataclass
class JoinOp(Op):
    """Block until the target thread finishes."""

    handle: "ThreadHandle" = None  # type: ignore[assignment]

    kind = "join"
    category = "other"
    may_block = True

    def _location(self) -> str:
        return "thread:join"


@dataclass
class YieldOp(Op):
    """A pure scheduling point with no memory effect."""

    kind = "yield"
    category = "other"

    def _location(self) -> str:
        return "sched:yield"


@dataclass
class MallocOp(Op):
    """Allocate a heap object at allocation site ``site``; yields the object."""

    site: str = "obj"
    fields: dict[str, Any] | None = None

    kind = "malloc"
    category = "other"

    def _location(self) -> str:
        return f"heapsite:{self.site}"


@dataclass
class FreeOp(Op):
    """Free a heap object; double frees raise :class:`DoubleFree`."""

    obj: "HeapObject | None" = None

    kind = "free"
    category = "write"
    writes = True

    def _location(self) -> str:
        return f"heap:{self.obj.name}" if self.obj is not None else "heap:<null>"


@dataclass
class HeapReadOp(Op):
    """Read a field of a heap object; UAF / null-deref oracles apply."""

    obj: "HeapObject | None" = None
    field_name: str = "val"

    kind = "hr"
    category = "read"

    def _location(self) -> str:
        return self.obj.location_of(self.field_name) if self.obj is not None else "heap:<null>"


@dataclass
class HeapWriteOp(Op):
    """Write a field of a heap object; UAF / null-deref oracles apply."""

    obj: "HeapObject | None" = None
    field_name: str = "val"
    value: Any = None

    kind = "hw"
    category = "write"
    writes = True

    def _location(self) -> str:
        return self.obj.location_of(self.field_name) if self.obj is not None else "heap:<null>"
