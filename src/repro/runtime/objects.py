"""Shared-state objects visible to the deterministic runtime.

Every object a benchmark program can share between threads is defined here:
plain shared memory locations (:class:`SharedVar`), the pthread-style
synchronization primitives (:class:`Mutex`, :class:`CondVar`,
:class:`Semaphore`, :class:`Barrier`) and a model heap (:class:`Heap`,
:class:`HeapObject`) used by the ConVul-style memory-safety benchmarks.

All objects are *fresh per execution*: a program factory constructs them in
its ``main`` body, so no cross-execution reset is needed.  Each object owns a
stable string ``location`` used to name the memory location ``x`` in events
``op(x)@l`` (paper Section 3); stability across executions is what makes
abstract events comparable between schedules.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.runtime.errors import DoubleFree, ProgramError, UseAfterFree


class SharedVar:
    """A single shared memory location with sequentially-consistent accesses.

    The runtime assumes sequential consistency, as the paper does
    (Section 4.1, "Memory Model"), so a variable is just a current value plus
    the event id of its last writer (used to compute the reads-from relation).
    """

    __slots__ = ("name", "value", "last_writer", "location")

    def __init__(self, name: str, init: Any = 0):
        self.name = name
        self.value = init
        #: Event id of the last write; 0 denotes the initial pseudo-write.
        self.last_writer = 0
        #: Stable location label ``x``; precomputed (names are immutable)
        #: because op construction reads it on every visible access.
        self.location = f"var:{name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedVar({self.name!r}, value={self.value!r})"


class Mutex:
    """A non-reentrant lock; acquiring while held by another thread blocks.

    Lock and unlock operations are modelled as read-modify-write and write
    events on the mutex's location so the reads-from relation also captures
    synchronization order, mirroring RFF's instrumentation of "individual
    memory and thread primitives" (paper Section 4).
    """

    __slots__ = ("name", "owner", "last_writer", "error_checking", "location")

    def __init__(self, name: str, error_checking: bool = True):
        self.name = name
        #: Thread id currently holding the mutex, or None.
        self.owner: int | None = None
        self.last_writer = 0
        #: If True, unlocking a mutex not held by the caller raises
        #: ProgramError; if False it is silently tolerated (some real
        #: benchmarks rely on sloppy unlock behaviour).
        self.error_checking = error_checking
        self.location = f"mutex:{name}"

    @property
    def held(self) -> bool:
        return self.owner is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mutex({self.name!r}, owner={self.owner})"


class CondVar:
    """A condition variable with FIFO wakeup order.

    ``waiters`` holds thread ids currently blocked in ``wait``; the executor
    moves signalled threads into a re-acquire state for the associated mutex.
    FIFO order keeps the runtime deterministic for a fixed schedule — waiters
    is a deque so the executor's FIFO ``popleft`` wakeups are O(1).
    """

    __slots__ = ("name", "waiters", "last_writer", "location")

    def __init__(self, name: str):
        self.name = name
        self.waiters: deque[int] = deque()
        self.last_writer = 0
        self.location = f"cond:{name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CondVar({self.name!r}, waiters={list(self.waiters)})"


class Semaphore:
    """A counting semaphore; ``acquire`` blocks while the count is zero."""

    __slots__ = ("name", "count", "last_writer", "location")

    def __init__(self, name: str, init: int = 0):
        if init < 0:
            raise ProgramError(f"semaphore {name!r} initialised below zero")
        self.name = name
        self.count = init
        self.last_writer = 0
        self.location = f"sem:{name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Semaphore({self.name!r}, count={self.count})"


class Barrier:
    """A cyclic barrier for ``parties`` threads.

    Threads arriving at the barrier block until the last party arrives, at
    which point every waiter is released and the barrier resets.
    """

    __slots__ = ("name", "parties", "arrived", "last_writer", "generation", "location")

    def __init__(self, name: str, parties: int):
        if parties < 1:
            raise ProgramError(f"barrier {name!r} needs at least one party")
        self.name = name
        self.parties = parties
        self.arrived: list[int] = []
        self.generation = 0
        self.last_writer = 0
        self.location = f"barrier:{name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Barrier({self.name!r}, {len(self.arrived)}/{self.parties})"


class HeapObject:
    """A heap allocation with named fields and a liveness bit.

    Field accesses after :meth:`Heap.free` raise :class:`UseAfterFree`; this
    is the oracle behind the ConVul CVE models (use-after-free, double-free
    and null-dereference vulnerabilities; paper Section 5.1).
    """

    __slots__ = ("name", "fields", "freed", "field_writers", "_field_locations")

    def __init__(self, name: str, fields: dict[str, Any] | None = None):
        self.name = name
        self.fields: dict[str, Any] = dict(fields or {})
        self.freed = False
        #: Last-writer event id per field (0 = initial value at malloc).
        self.field_writers: dict[str, int] = {}
        #: field -> memoized location label (built on first access).
        self._field_locations: dict[str, str] = {}

    def location_of(self, field: str) -> str:
        label = self._field_locations.get(field)
        if label is None:
            label = self._field_locations[field] = f"heap:{self.name}.{field}"
        return label

    def check_alive(self, access: str) -> None:
        if self.freed:
            raise UseAfterFree(f"{access} on freed object {self.name!r}")

    def read_field(self, field: str) -> Any:
        self.check_alive(f"read of field {field!r}")
        return self.fields.get(field)

    def write_field(self, field: str, value: Any) -> None:
        self.check_alive(f"write of field {field!r}")
        self.fields[field] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self.freed else "live"
        return f"HeapObject({self.name!r}, {state})"


class Heap:
    """Per-execution allocator; names objects by allocation site and order.

    Naming by ``(site, per-site counter)`` keeps heap locations stable across
    executions of the same program, which abstract events require.
    """

    __slots__ = ("_site_counts",)

    def __init__(self) -> None:
        self._site_counts: dict[str, int] = {}

    def malloc(self, site: str, fields: dict[str, Any] | None = None) -> HeapObject:
        index = self._site_counts.get(site, 0)
        self._site_counts[site] = index + 1
        return HeapObject(f"{site}#{index}", fields)

    def free(self, obj: HeapObject) -> None:
        if obj.freed:
            raise DoubleFree(f"double free of {obj.name!r}")
        obj.freed = True
