"""Thread bookkeeping for the deterministic runtime.

A thread is a Python generator advanced one visible event at a time by the
executor.  Between two yields a thread runs thread-local code atomically,
which is sound because only yielded operations touch shared state — the same
discipline the paper's binary instrumentation enforces by hooking every
shared-memory access (Section 4.1).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.runtime.objects import Barrier, CondVar, Mutex
    from repro.runtime.ops import Op


class ThreadStatus(enum.Enum):
    """Lifecycle of a runtime thread."""

    RUNNABLE = "runnable"
    WAITING_COND = "waiting-cond"
    WAITING_BARRIER = "waiting-barrier"
    FINISHED = "finished"


class ThreadState:
    """One runtime thread: its generator, status and pending operation."""

    __slots__ = (
        "tid",
        "name",
        "gen",
        "status",
        "pending",
        "pending_loc",
        "pending_is_reacquire",
        "wait_cond",
        "wait_mutex",
        "wait_barrier",
        "step_count",
        "cached_candidate",
    )

    def __init__(self, tid: int, name: str, gen: Generator["Op", Any, Any]):
        self.tid = tid
        self.name = name
        self.gen = gen
        self.status = ThreadStatus.RUNNABLE
        #: The operation yielded but not yet executed, or None once finished.
        self.pending: "Op | None" = None
        #: Code-location label captured when ``pending`` was yielded.
        self.pending_loc: str = ""
        #: True when ``pending`` is the synthetic mutex re-acquire that
        #: completes a condition-variable wait.
        self.pending_is_reacquire = False
        self.wait_cond: "CondVar | None" = None
        self.wait_mutex: "Mutex | None" = None
        self.wait_barrier: "Barrier | None" = None
        #: Number of events this thread has executed (its per-thread clock).
        self.step_count = 0
        #: Executor-managed memo of the Candidate for the current pending
        #: op; invalidated whenever ``pending`` changes.
        self.cached_candidate = None

    @property
    def finished(self) -> bool:
        return self.status == ThreadStatus.FINISHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadState(tid={self.tid}, name={self.name!r}, status={self.status.value})"


class ThreadHandle:
    """The value returned by spawn, used as the target of join."""

    __slots__ = ("thread",)

    def __init__(self, thread: ThreadState):
        self.thread = thread

    @property
    def tid(self) -> int:
        return self.thread.tid

    @property
    def finished(self) -> bool:
        return self.thread.finished

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadHandle(tid={self.tid})"
