"""Runtime guardrails: watchdogs and livelock detection for one execution.

A production fuzzing campaign survives millions of adversarial executions
only if no single benchmark program can wedge it: a spin loop must not eat
the whole schedule budget, a livelocked pair of threads must be killed and
*reported* (a liveness bug is a finding, not an accident), and the kill
decision must be deterministic so serial and parallel campaigns — and every
replay of the same schedule — agree bit-for-bit on the outcome.

Three guards, all opt-in through :class:`GuardConfig`:

* **step budget** — a deterministic watchdog: execution step ``N`` under the
  same schedule always trips at the same point, so ``timeout`` outcomes
  replay exactly.  This is the watchdog campaigns should use.
* **wall clock** — a best-effort safety net for pathological slowness.  It
  is machine-dependent by nature (``ExecutionTimeout.deterministic`` is
  False), checked only every :attr:`GuardConfig.wall_check_interval` steps
  to keep the hot loop cheap.
* **livelock detector** — flags ``window`` consecutive steps that each
  repeat an already-executed event fingerprint while no thread finishes.
  CAS retry storms and lost-wakeup spin loops cycle through a fixed set of
  fingerprints; genuine progress (a new value, a new location, a thread
  exit) resets the streak.  Deterministic given the schedule.

The executor raises the corresponding :class:`~repro.runtime.errors`
violations, which flow through the normal crash path: the outcome becomes
``"timeout"`` / ``"livelock"``, the fuzzer records a crash, and triage
buckets it like any other bug.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.runtime.errors import ExecutionTimeout, LivelockDetected

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.events import Event

#: Fingerprint value kinds hashed directly; everything else degrades to the
#: type name (heap objects, thread handles) so fingerprints stay hashable
#: and cheap to build.
_PRIMITIVES = (int, float, str, bool, type(None))


def _fingerprint_value(value: Any) -> Any:
    if isinstance(value, _PRIMITIVES):
        return value
    return type(value).__name__


@dataclass(frozen=True)
class GuardConfig:
    """Per-execution guardrail knobs; ``None`` disables each guard."""

    #: Deterministic step watchdog: trip after this many executed events.
    step_budget: int | None = None
    #: Wall-clock watchdog in seconds (best-effort, non-deterministic).
    wall_seconds: float | None = None
    #: Livelock window: consecutive no-novelty steps before tripping.
    livelock_window: int | None = None
    #: Check the wall clock once every this many steps.
    wall_check_interval: int = 64

    @property
    def enabled(self) -> bool:
        return (
            self.step_budget is not None
            or self.wall_seconds is not None
            or self.livelock_window is not None
        )

    def as_tuple(self) -> tuple[int | None, float | None, int | None]:
        """Identity triple used in checkpoint headers and cell specs."""
        return (self.step_budget, self.wall_seconds, self.livelock_window)


class LivelockDetector:
    """Streak counter over event fingerprints: no novelty = no progress.

    A step's fingerprint is ``(tid, kind, location, loc, rf, value)``.  The
    detector keeps every fingerprint ever executed; a step whose fingerprint
    was already seen extends the current no-progress streak, a novel one (or
    a thread exit) resets it.  When the streak reaches ``window`` the
    execution is declared livelocked.
    """

    def __init__(self, window: int):
        if window < 2:
            raise ValueError(f"livelock window must be >= 2, got {window}")
        self.window = window
        self._seen: set[tuple] = set()
        self._streak = 0
        #: Locations participating in the repeating streak (triage frames).
        self._streak_locs: list[str] = []

    def observe(self, event: "Event") -> bool:
        """Feed one executed event; True when the livelock window filled."""
        fingerprint = (
            event.tid,
            event.kind,
            event.location,
            event.loc,
            event.rf,
            _fingerprint_value(event.value),
        )
        if fingerprint in self._seen:
            self._streak += 1
            if len(self._streak_locs) < self.window:
                self._streak_locs.append(event.loc)
            return self._streak >= self.window
        self._seen.add(fingerprint)
        self.progress()
        return False

    def progress(self) -> None:
        """Reset the streak (novel event or a thread finished)."""
        self._streak = 0
        self._streak_locs.clear()

    def streak_frames(self) -> tuple[str, ...]:
        """The distinct program points cycling in the current streak."""
        return tuple(sorted(set(self._streak_locs)))


class Watchdog:
    """Runtime-facing bundle of the configured guards for one execution.

    The executor calls :meth:`check_step` before choosing each event,
    :meth:`after_event` once the event is recorded, and :meth:`progress`
    when a thread finishes.  Guards report by raising the matching
    :class:`~repro.runtime.errors.RuntimeViolation`, which the executor's
    crash path converts into an outcome.
    """

    def __init__(self, config: GuardConfig, clock=time.monotonic):
        self.config = config
        self._clock = clock
        self._deadline: float | None = None
        self.livelock = (
            LivelockDetector(config.livelock_window)
            if config.livelock_window is not None
            else None
        )

    def start(self) -> None:
        if self.config.wall_seconds is not None:
            self._deadline = self._clock() + self.config.wall_seconds

    def check_step(self, step_index: int, frames_fn) -> None:
        """Trip the step-budget / wall-clock watchdogs, if configured.

        ``frames_fn`` lazily produces the execution frontier (pending
        program points of the live threads), recorded on the violation for
        triage bucketing — computed only when a watchdog actually trips.
        """
        budget = self.config.step_budget
        if budget is not None and step_index >= budget:
            error = ExecutionTimeout(
                f"step budget {budget} exhausted", deterministic=True
            )
            error.frames = frames_fn()
            raise error
        if (
            self._deadline is not None
            and step_index % self.config.wall_check_interval == 0
            and self._clock() > self._deadline
        ):
            error = ExecutionTimeout(
                f"wall clock exceeded {self.config.wall_seconds:g}s",
                deterministic=False,
            )
            error.frames = frames_fn()
            raise error

    def after_event(self, event: "Event") -> None:
        if self.livelock is not None and self.livelock.observe(event):
            error = LivelockDetected(
                f"no new events for {self.livelock.window} consecutive steps",
                window=self.livelock.window,
            )
            error.frames = self.livelock.streak_frames()
            raise error

    def progress(self) -> None:
        """A thread finished: genuine progress, reset the livelock streak."""
        if self.livelock is not None:
            self.livelock.progress()
